package datastore

import (
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/stream"
)

// Live-sharing API: the authenticated surface over the store's stream hub.
// Consumers subscribe to a contributor's channels and poll for segments
// that were ingested after the subscription, each re-filtered through the
// contributor's current privacy rules at delivery time.

// Stream exposes the hub for server wiring (graceful shutdown, health).
func (s *Service) Stream() *stream.Hub { return s.stream }

// Subscribe registers (or resumes) a consumer's live subscription to a
// contributor's channels. An empty channel list follows everything the
// rules release.
func (s *Service) Subscribe(key auth.APIKey, contributor string, channels []string) (stream.SubInfo, error) {
	u, err := s.authenticate(key, auth.RoleConsumer)
	if err != nil {
		return stream.SubInfo{}, err
	}
	s.mu.RLock()
	_, err = s.stateLocked(contributor)
	s.mu.RUnlock()
	if err != nil {
		return stream.SubInfo{}, err
	}
	return s.stream.Subscribe(u.Name, contributor, channels)
}

// StreamNext long-polls the consumer's subscription: cursor acknowledges
// every event at or before it, wait bounds the block when nothing is
// pending.
func (s *Service) StreamNext(key auth.APIKey, id, cursor string, wait time.Duration) (stream.Batch, error) {
	u, err := s.authenticate(key, auth.RoleConsumer)
	if err != nil {
		return stream.Batch{}, err
	}
	return s.stream.Next(u.Name, id, cursor, wait)
}

// StreamAck advances the durable cursor without polling.
func (s *Service) StreamAck(key auth.APIKey, id, cursor string) error {
	u, err := s.authenticate(key, auth.RoleConsumer)
	if err != nil {
		return err
	}
	return s.stream.Ack(u.Name, id, cursor)
}

// Unsubscribe revokes the consumer's subscription.
func (s *Service) Unsubscribe(key auth.APIKey, id string) error {
	u, err := s.authenticate(key, auth.RoleConsumer)
	if err != nil {
		return err
	}
	return s.stream.Unsubscribe(u.Name, id)
}

// StreamEngine implements stream.RuleSource: the contributor's compiled
// rule index (falling back to the linear engine if no index is built) and
// current rule version. A nil decider denies everything.
func (s *Service) StreamEngine(contributor string) (rules.Decider, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, err := s.stateLocked(contributor)
	if err != nil {
		return nil, 0, err
	}
	return st.decider(), st.ruleVersion, nil
}

// StreamGroups implements stream.RuleSource: the groups this contributor
// assigned to the consumer (group-scoped rules).
func (s *Service) StreamGroups(contributor, consumer string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, err := s.stateLocked(contributor)
	if err != nil {
		return nil
	}
	return append([]string(nil), st.groups[normName(consumer)]...)
}
