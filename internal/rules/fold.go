package rules

import (
	"unicode"
	"unicode/utf8"
)

// Fold returns a canonical case-folded form of s with the property that
// Fold(a) == Fold(b) exactly when strings.EqualFold(a, b). It exists so
// rule conditions can be canonicalized once at compile time and matched
// with a map lookup instead of an EqualFold scan per request.
//
// strings.ToLower is NOT such a canonical form: EqualFold equates runes
// through their full simple-fold orbit (e.g. 'ſ' U+017F folds to 's',
// 'K' U+212A folds to 'k') while ToLower leaves them distinct. Fold maps
// every rune to the smallest rune in its SimpleFold orbit — the same
// representative for any two runes EqualFold considers equal — lowercased
// when that representative is an ASCII capital, so the slow path lands on
// the same bytes as the allocation-free ASCII fast path.
func Fold(s string) string {
	// ASCII fast path: no allocation when the string is already folded.
	lower := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= utf8.RuneSelf {
			return foldSlow(s)
		}
		if c >= 'A' && c <= 'Z' && lower < 0 {
			lower = i
		}
	}
	if lower < 0 {
		return s
	}
	b := []byte(s)
	for i := lower; i < len(b); i++ {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

func foldSlow(s string) string {
	var b []rune
	for _, r := range s {
		b = append(b, foldRune(r))
	}
	return string(b)
}

// foldRune returns the minimum rune in r's simple case-folding orbit,
// lowercased when that minimum is an ASCII capital. Any orbit containing
// an ASCII letter contains both its cases, so its minimum is the capital;
// mapping it to the lowercase keeps the representative unique per orbit
// while agreeing with Fold's ASCII fast path ('ſ' → 'S' → 's').
func foldRune(r rune) rune {
	min := r
	for c := unicode.SimpleFold(r); c != r; c = unicode.SimpleFold(c) {
		if c < min {
			min = c
		}
	}
	if min >= 'A' && min <= 'Z' {
		min += 'a' - 'A'
	}
	return min
}

// foldSet canonicalizes a condition list into a fold-keyed set.
func foldSet(vals []string) map[string]struct{} {
	if len(vals) == 0 {
		return nil
	}
	out := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		out[Fold(v)] = struct{}{}
	}
	return out
}
