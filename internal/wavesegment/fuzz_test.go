package wavesegment

import (
	"testing"
	"time"
)

// FuzzUnmarshalBinary hardens the storage blob decoder against corrupt WAL
// contents: it must reject or round-trip, never panic, and anything it
// accepts must validate.
func FuzzUnmarshalBinary(f *testing.F) {
	good, err := MarshalBinary(uniformSegment(time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC), 32))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	ts, err := MarshalBinary(timestampedSegment(time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC), 0, time.Second))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ts)
	f.Add([]byte{})
	f.Add([]byte("WSG1"))
	f.Add([]byte("WSG1\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := UnmarshalBinary(data)
		if err != nil {
			return
		}
		if verr := seg.Validate(); verr != nil {
			t.Fatalf("decoder accepted invalid segment: %v", verr)
		}
		// Accepted blobs re-encode and decode to the same shape.
		out, err := MarshalBinary(seg)
		if err != nil {
			t.Fatalf("accepted segment does not re-encode: %v", err)
		}
		back, err := UnmarshalBinary(out)
		if err != nil {
			t.Fatalf("re-encoded blob does not decode: %v", err)
		}
		if back.NumSamples() != seg.NumSamples() || len(back.Channels) != len(seg.Channels) {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzUnmarshalJSONSegment hardens the Fig. 5 wire decoder (upload API
// input) the same way.
func FuzzUnmarshalJSONSegment(f *testing.F) {
	good, err := MarshalJSONSegment(uniformSegment(time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC), 8))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{"start_time":"2011-02-16T10:00:00Z","interval_ms":100,"format":["ECG"],"data":[[1]]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"start_time":"x"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := UnmarshalJSONSegment(data)
		if err != nil {
			return
		}
		if verr := seg.Validate(); verr != nil {
			t.Fatalf("decoder accepted invalid segment: %v", verr)
		}
	})
}
