// Package bad exercises the ctxpropagate analyzer: minting contexts in
// library code and dropping an in-scope context are both flagged.
package bad

import "context"

type client struct{}

func (c *client) Fetch(n int) error                         { _ = n; return nil }
func (c *client) FetchCtx(ctx context.Context, n int) error { _ = ctx; _ = n; return nil }

func mint() context.Context {
	return context.Background() // want "context.Background() in library code"
}

func todo() context.Context {
	return context.TODO() // want "context.TODO() in library code"
}

func handler(ctx context.Context, c *client) error {
	_ = ctx
	return c.Fetch(1) // want "drops the in-scope request context"
}
