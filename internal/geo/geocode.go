package geo

import (
	"fmt"
	"math"
)

// Address is a reverse-geocoded postal address at decreasing precision, the
// vocabulary of the Table 1(b) location-abstraction ladder.
type Address struct {
	Street  string `json:"street,omitempty"`
	Zipcode string `json:"zipcode,omitempty"`
	City    string `json:"city,omitempty"`
	State   string `json:"state,omitempty"`
	Country string `json:"country,omitempty"`
}

// Geocoder turns coordinates into addresses. The paper relies on Google Maps
// for this; the synthetic implementation below preserves the property the
// access-control layer needs — a deterministic many-to-one mapping at each
// abstraction level, with levels strictly nested.
type Geocoder interface {
	ReverseGeocode(p Point) (Address, error)
}

// GridGeocoder is a deterministic synthetic geography. The globe is divided
// into nested grid cells: countries (20°), states (4°), cities (0.5°),
// zipcodes (0.1°), and street blocks (0.02°). Cell names are derived from
// cell indices, so two nearby points share coarse components and the
// hierarchy is strictly nested — exactly the structure reverse geocoding
// gives real addresses.
type GridGeocoder struct{}

// Cell sizes in degrees for each level of the synthetic geography.
const (
	countryCellDeg = 20.0
	stateCellDeg   = 4.0
	cityCellDeg    = 0.5
	zipCellDeg     = 0.1
	streetCellDeg  = 0.02
)

// ReverseGeocode maps a point to its synthetic address. It never fails for
// valid points.
func (GridGeocoder) ReverseGeocode(p Point) (Address, error) {
	if !p.Valid() {
		return Address{}, fmt.Errorf("geo: cannot geocode invalid point %v", p)
	}
	ci, cj := cellIndex(p, countryCellDeg)
	si, sj := cellIndex(p, stateCellDeg)
	cyi, cyj := cellIndex(p, cityCellDeg)
	zi, zj := cellIndex(p, zipCellDeg)
	sti, stj := cellIndex(p, streetCellDeg)
	return Address{
		Country: fmt.Sprintf("Country-%s", cellName(ci, cj)),
		State:   fmt.Sprintf("State-%s", cellName(si, sj)),
		City:    fmt.Sprintf("City-%s", cellName(cyi, cyj)),
		Zipcode: fmt.Sprintf("%05d", zipNumber(zi, zj)),
		Street:  fmt.Sprintf("%d %s Street", 100+((sti*7+stj*13)%9900+9900)%9900, streetName(sti, stj)),
	}, nil
}

func cellIndex(p Point, deg float64) (int, int) {
	return int(math.Floor((p.Lat + 90) / deg)), int(math.Floor((p.Lon + 180) / deg))
}

func cellName(i, j int) string {
	// Compact, stable, human-readable cell identifier.
	return fmt.Sprintf("%c%c%d", 'A'+absMod(i, 26), 'A'+absMod(j, 26), absMod(i*31+j, 100))
}

func zipNumber(i, j int) int { return absMod(i*1009+j*9176, 100000) }

var streetNames = [...]string{
	"Oak", "Maple", "Cedar", "Pine", "Elm", "Walnut", "Willow", "Birch",
	"Juniper", "Sycamore", "Magnolia", "Chestnut", "Laurel", "Aspen", "Cypress", "Alder",
}

func streetName(i, j int) string { return streetNames[absMod(i*5+j*3, len(streetNames))] }

func absMod(v, m int) int {
	r := v % m
	if r < 0 {
		r += m
	}
	return r
}

// LocationGranularity is the Table 1(b) location-abstraction level.
type LocationGranularity int

// Location abstraction levels ordered from most precise to least.
const (
	LocCoordinates LocationGranularity = iota
	LocStreetAddress
	LocZipcode
	LocCity
	LocState
	LocCountry
	LocNotShared
)

var locGranNames = map[LocationGranularity]string{
	LocCoordinates:   "Coordinates",
	LocStreetAddress: "StreetAddress",
	LocZipcode:       "Zipcode",
	LocCity:          "City",
	LocState:         "State",
	LocCountry:       "Country",
	LocNotShared:     "NotShared",
}

// ParseLocationGranularity parses a Table 1(b) location option name.
func ParseLocationGranularity(s string) (LocationGranularity, error) {
	key := normalizeLabel(s)
	for g, name := range locGranNames {
		if normalizeLabel(name) == key {
			return g, nil
		}
	}
	switch key {
	case "street address", "street":
		return LocStreetAddress, nil
	case "zip", "zip code":
		return LocZipcode, nil
	case "not share", "not_shared", "notshare", "none":
		return LocNotShared, nil
	}
	return 0, fmt.Errorf("geo: unknown location granularity %q", s)
}

func (g LocationGranularity) String() string {
	if n, ok := locGranNames[g]; ok {
		return n
	}
	return fmt.Sprintf("LocationGranularity(%d)", int(g))
}

// Valid reports whether g is a defined level.
func (g LocationGranularity) Valid() bool { return g >= LocCoordinates && g <= LocNotShared }

// CoarserThan reports whether g reveals strictly less than o.
func (g LocationGranularity) CoarserThan(o LocationGranularity) bool { return g > o }

// CoarsestLocation returns the less precise of two levels.
func CoarsestLocation(a, b LocationGranularity) LocationGranularity {
	if a.CoarserThan(b) {
		return a
	}
	return b
}

// AbstractedLocation is a location value after abstraction: either exact
// coordinates, a textual address component, or withheld entirely.
type AbstractedLocation struct {
	Granularity LocationGranularity `json:"granularity"`
	Point       *Point              `json:"point,omitempty"` // only at LocCoordinates
	Text        string              `json:"text,omitempty"`  // street/zip/city/state/country value
}

// Shared reports whether any location information remains.
func (a AbstractedLocation) Shared() bool { return a.Granularity != LocNotShared }

// Abstract reduces a point to the requested granularity using the geocoder.
func Abstract(gc Geocoder, p Point, g LocationGranularity) (AbstractedLocation, error) {
	if !g.Valid() {
		return AbstractedLocation{}, fmt.Errorf("geo: invalid granularity %d", int(g))
	}
	if g == LocCoordinates {
		pp := p
		return AbstractedLocation{Granularity: g, Point: &pp}, nil
	}
	if g == LocNotShared {
		return AbstractedLocation{Granularity: LocNotShared}, nil
	}
	addr, err := gc.ReverseGeocode(p)
	if err != nil {
		return AbstractedLocation{}, err
	}
	var text string
	switch g {
	case LocStreetAddress:
		text = fmt.Sprintf("%s, %s %s, %s, %s", addr.Street, addr.City, addr.Zipcode, addr.State, addr.Country)
	case LocZipcode:
		text = addr.Zipcode
	case LocCity:
		text = addr.City
	case LocState:
		text = addr.State
	case LocCountry:
		text = addr.Country
	}
	return AbstractedLocation{Granularity: g, Text: text}, nil
}
