// Package clean shows the sanctioned egress the privacyflow analyzer
// must accept: segments that pass through the abstraction release
// pipeline are clean, even when the helper-chain shape mirrors the bad
// fixture's leak exactly.
package clean

import (
	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

type queryResp struct {
	Releases []*abstraction.Release
	Segments []*wavesegment.Segment
}

// released ships the enforcement pipeline's output through the same
// two-level helper chain the bad fixture leaks through.
func released(rels []*abstraction.Release) queryResp {
	return queryResp{Releases: rels, Segments: level1(rels)}
}

func level1(rels []*abstraction.Release) []*wavesegment.Segment {
	return level2(rels)
}

func level2(rels []*abstraction.Release) []*wavesegment.Segment {
	var segs []*wavesegment.Segment
	for _, rel := range rels {
		segs = append(segs, rel.Segment)
	}
	return segs
}

// sanitized decodes a raw segment — tainted at birth — but launders it
// through abstraction.EnforceAll before it reaches the response: the
// sanitizer axiom must cut the flow.
func sanitized(e rules.Decider, data []byte, gc geo.Geocoder) (queryResp, error) {
	seg, err := wavesegment.UnmarshalJSONSegment(data)
	if err != nil {
		return queryResp{}, err
	}
	rels, err := abstraction.EnforceAll(e, "consumer", nil, []*wavesegment.Segment{seg}, gc)
	if err != nil {
		return queryResp{}, err
	}
	var segs []*wavesegment.Segment
	for _, rel := range rels {
		segs = append(segs, rel.Segment)
	}
	return queryResp{Releases: rels, Segments: segs}, nil
}

// direct wraps released segments in a container literal: wrapping clean
// values must not mint taint.
func direct(rels []*abstraction.Release) queryResp {
	return queryResp{Segments: []*wavesegment.Segment{rels[0].Segment}}
}
