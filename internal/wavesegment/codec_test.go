package wavesegment

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestJSONRoundTripUniform(t *testing.T) {
	s := uniformSegment(t0, 16)
	_ = s.Annotate("Drive", t0, t0.Add(time.Second))
	data, err := MarshalJSONSegment(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalJSONSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	assertSegmentsEqual(t, s, back)
}

func TestJSONRoundTripTimestamped(t *testing.T) {
	s := timestampedSegment(t0, 0, time.Second, 3*time.Second)
	data, err := MarshalJSONSegment(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalJSONSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	assertSegmentsEqual(t, s, back)
	if back.Interval != 0 || len(back.Timestamps) != 3 {
		t.Errorf("timestamped shape lost: %v", back)
	}
}

func TestJSONShapeMatchesFig5(t *testing.T) {
	// The Fig. 5 wire format: metadata (start_time, interval_ms, location,
	// format) plus the value blob under "data".
	s := uniformSegment(t0, 2)
	data, err := MarshalJSONSegment(s)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"start_time", "interval_ms", "location", "format", "data"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("wire JSON missing %q: %s", key, data)
		}
	}
	if doc["interval_ms"].(float64) != 100 {
		t.Errorf("interval_ms = %v", doc["interval_ms"])
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"start_time":"bogus","format":["ECG"],"data":[[1]]}`,
		`{"start_time":"2011-02-16T10:00:00Z","interval_ms":100,"format":[],"data":[[1]]}`,
		`{"start_time":"2011-02-16T10:00:00Z","interval_ms":100,"format":["ECG"],"data":[[1]],"timestamps":["bogus"]}`,
		`{"start_time":"2011-02-16T10:00:00Z","interval_ms":100,"format":["ECG"],"data":[[1,2]]}`,
	}
	for _, in := range cases {
		if _, err := UnmarshalJSONSegment([]byte(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestBinaryRoundTripUniform(t *testing.T) {
	s := uniformSegment(t0, 64)
	_ = s.Annotate("Stress", t0.Add(time.Second), t0.Add(2*time.Second))
	blob, err := MarshalBinary(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	assertSegmentsEqual(t, s, back)
}

func TestBinaryRoundTripTimestamped(t *testing.T) {
	s := timestampedSegment(t0, 0, 500*time.Millisecond, 7*time.Second)
	blob, err := MarshalBinary(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	assertSegmentsEqual(t, s, back)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalBinary([]byte("hello world")); err == nil {
		t.Error("garbage should be rejected")
	}
	if _, err := UnmarshalBinary(nil); err == nil {
		t.Error("empty blob should be rejected")
	}
	// Truncations of a valid blob must error, never panic.
	s := uniformSegment(t0, 8)
	blob, err := MarshalBinary(s)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut += 3 {
		if _, err := UnmarshalBinary(blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Bit flips must never panic (they may or may not error).
	for i := 5; i < len(blob); i += 7 {
		corrupt := append([]byte(nil), blob...)
		corrupt[i] ^= 0xFF
		_, _ = UnmarshalBinary(corrupt)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8, chans uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := int(chans%4) + 1
		ns := int(n%100) + 1
		names := []string{ChannelECG, ChannelRespiration, ChannelAccelX, ChannelMicrophone}[:nc]
		s := &Segment{
			Contributor: "prop",
			Start:       t0.Add(time.Duration(rng.Int63n(1e12))),
			Interval:    time.Duration(rng.Int63n(1e9) + 1),
			Channels:    names,
		}
		for i := 0; i < ns; i++ {
			row := make([]float64, nc)
			for j := range row {
				row[j] = rng.NormFloat64() * 1000
			}
			s.Values = append(s.Values, row)
		}
		blob, err := MarshalBinary(s)
		if err != nil {
			return false
		}
		back, err := UnmarshalBinary(blob)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(s.Values, back.Values) &&
			s.Start.Equal(back.Start) && s.Interval == back.Interval
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinaryPreservesSpecialFloats(t *testing.T) {
	s := uniformSegment(t0, 1)
	s.Values[0] = []float64{math.Inf(1), math.SmallestNonzeroFloat64}
	blob, err := MarshalBinary(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.Values[0][0], 1) || back.Values[0][1] != math.SmallestNonzeroFloat64 {
		t.Errorf("special floats mangled: %v", back.Values[0])
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	s := uniformSegment(t0, 1000)
	rng := rand.New(rand.NewSource(7))
	for i := range s.Values {
		for j := range s.Values[i] {
			s.Values[i][j] = rng.NormFloat64() // realistic sensor noise, not small ints
		}
	}
	blob, err := MarshalBinary(s)
	if err != nil {
		t.Fatal(err)
	}
	js, err := MarshalJSONSegment(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) >= len(js) {
		t.Errorf("binary blob (%d B) not smaller than JSON (%d B)", len(blob), len(js))
	}
}

func assertSegmentsEqual(t *testing.T, want, got *Segment) {
	t.Helper()
	if got.Contributor != want.Contributor {
		t.Errorf("contributor %q != %q", got.Contributor, want.Contributor)
	}
	if !got.StartTime().Equal(want.StartTime()) {
		t.Errorf("start %v != %v", got.StartTime(), want.StartTime())
	}
	if got.Interval != want.Interval {
		t.Errorf("interval %v != %v", got.Interval, want.Interval)
	}
	if got.Location != want.Location {
		t.Errorf("location %v != %v", got.Location, want.Location)
	}
	if !reflect.DeepEqual(got.Channels, want.Channels) {
		t.Errorf("channels %v != %v", got.Channels, want.Channels)
	}
	if !reflect.DeepEqual(got.Values, want.Values) {
		t.Errorf("values differ")
	}
	if len(got.Timestamps) != len(want.Timestamps) {
		t.Fatalf("timestamps %d != %d", len(got.Timestamps), len(want.Timestamps))
	}
	for i := range want.Timestamps {
		if !got.Timestamps[i].Equal(want.Timestamps[i]) {
			t.Errorf("timestamp %d: %v != %v", i, got.Timestamps[i], want.Timestamps[i])
		}
	}
	if len(got.Annotations) != len(want.Annotations) {
		t.Fatalf("annotations %d != %d", len(got.Annotations), len(want.Annotations))
	}
	for i := range want.Annotations {
		w, g := want.Annotations[i], got.Annotations[i]
		if g.Context != w.Context || !g.Start.Equal(w.Start) || !g.End.Equal(w.End) {
			t.Errorf("annotation %d: %+v != %+v", i, g, w)
		}
	}
}
