package federation

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/overload"
	"sensorsafe/internal/query"
	"sensorsafe/internal/resilience"
)

var t0 = time.Date(2011, 2, 16, 8, 0, 0, 0, time.UTC)

// rel builds a minimal release at t0+offset.
func rel(contributor string, offset time.Duration) *abstraction.Release {
	return &abstraction.Release{
		Contributor: contributor,
		Start:       t0.Add(offset),
		End:         t0.Add(offset + time.Minute),
	}
}

// fakeStore serves canned releases with optional latency and scripted
// per-call errors.
type fakeStore struct {
	rels  []*abstraction.Release
	delay time.Duration
	// errs are consumed one per call; past the end calls succeed.
	errs  []error
	calls atomic.Int32
}

func (s *fakeStore) QueryCtx(ctx context.Context, _ auth.APIKey, q *query.Query) ([]*abstraction.Release, error) {
	n := int(s.calls.Add(1))
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if n-1 < len(s.errs) && s.errs[n-1] != nil {
		return nil, s.errs[n-1]
	}
	out := make([]*abstraction.Release, len(s.rels))
	copy(out, s.rels)
	return out, nil
}

// fakeBroker resolves cohorts from fixtures and mints one credential per
// contributor, counting Connect calls.
type fakeBroker struct {
	mu           sync.Mutex
	hits         []broker.SearchHit
	dir          []broker.ContributorInfo
	lists        map[string][]string
	rosters      map[string][]string
	connectDelay time.Duration
	connectCalls map[string]int
	connectErr   map[string]error
}

func (b *fakeBroker) SearchInfoCtx(_ context.Context, _ auth.APIKey, _ *broker.SearchQuery) ([]broker.SearchHit, error) {
	return b.hits, nil
}

func (b *fakeBroker) DirectoryCtx(_ context.Context, _ auth.APIKey) ([]broker.ContributorInfo, error) {
	return b.dir, nil
}

func (b *fakeBroker) ListCtx(_ context.Context, _ auth.APIKey, name string) ([]string, error) {
	l, ok := b.lists[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", broker.ErrUnknownList, name)
	}
	return l, nil
}

func (b *fakeBroker) StudyContributorsCtx(_ context.Context, study string) ([]string, error) {
	l, ok := b.rosters[study]
	if !ok {
		return nil, fmt.Errorf("%w: %s", broker.ErrUnknownStudy, study)
	}
	return l, nil
}

func (b *fakeBroker) ConnectCtx(_ context.Context, _ auth.APIKey, contributor string) (broker.Credential, error) {
	if b.connectDelay > 0 {
		time.Sleep(b.connectDelay)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.connectCalls == nil {
		b.connectCalls = make(map[string]int)
	}
	b.connectCalls[contributor]++
	if err := b.connectErr[contributor]; err != nil {
		return broker.Credential{}, err
	}
	return broker.Credential{StoreAddr: "mem://" + contributor, Key: auth.APIKey("key-" + contributor)}, nil
}

func (b *fakeBroker) connects(contributor string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.connectCalls[contributor]
}

// deployFake builds an engine over fake stores keyed by "mem://<name>".
func deployFake(stores map[string]*fakeStore) (*Engine, *fakeBroker) {
	b := &fakeBroker{}
	for name := range stores {
		b.dir = append(b.dir, broker.ContributorInfo{Name: name, StoreAddr: "mem://" + name})
		b.hits = append(b.hits, broker.SearchHit{Contributor: name, StoreAddr: "mem://" + name})
	}
	e := &Engine{
		Broker: b,
		Key:    "consumer-key",
		Dial: func(addr string) Store {
			return stores[strings.TrimPrefix(addr, "mem://")]
		},
		Options: Options{PerStoreTimeout: 2 * time.Second},
	}
	return e, b
}

func TestCohortValidate(t *testing.T) {
	e, _ := deployFake(map[string]*fakeStore{"alice": {}})
	for _, c := range []Cohort{
		{},
		{List: "l", Study: "s"},
		{Search: &broker.SearchQuery{}, Contributors: []string{"alice"}},
	} {
		if _, err := e.CohortQuery(context.Background(), &Request{Cohort: c}); err == nil {
			t.Errorf("cohort %+v should be rejected", c)
		}
	}
}

func TestMergeGlobalTimeOrder(t *testing.T) {
	stores := map[string]*fakeStore{
		"alice": {rels: []*abstraction.Release{rel("alice", 0), rel("alice", 3*time.Hour)}},
		"bob":   {rels: []*abstraction.Release{rel("bob", time.Hour), rel("bob", 4*time.Hour)}},
		"carol": {rels: []*abstraction.Release{rel("carol", 2*time.Hour), rel("carol", 5*time.Hour)}},
	}
	e, _ := deployFake(stores)
	res, err := e.CohortQuery(context.Background(), &Request{
		Cohort: Cohort{Search: &broker.SearchQuery{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 6 {
		t.Fatalf("merged %d releases, want 6", len(res.Releases))
	}
	wantOrder := []string{"alice", "bob", "carol", "alice", "bob", "carol"}
	for i, r := range res.Releases {
		if r.Contributor != wantOrder[i] {
			t.Errorf("release %d from %s, want %s", i, r.Contributor, wantOrder[i])
		}
		if i > 0 && res.Releases[i].Start.Before(res.Releases[i-1].Start) {
			t.Errorf("release %d out of global time order", i)
		}
	}
	if res.Partial {
		t.Error("all stores answered; result must not be partial")
	}
	if res.Cursor != "" {
		t.Errorf("exhausted cohort returned cursor %q", res.Cursor)
	}
}

func TestCursorPagination(t *testing.T) {
	stores := map[string]*fakeStore{
		"alice": {rels: []*abstraction.Release{rel("alice", 0), rel("alice", 2*time.Hour), rel("alice", 4*time.Hour)}},
		"bob":   {rels: []*abstraction.Release{rel("bob", time.Hour), rel("bob", 3*time.Hour)}},
	}
	e, _ := deployFake(stores)
	oneShot, err := e.CohortQuery(context.Background(), &Request{Cohort: Cohort{Contributors: []string{"alice", "bob"}}})
	if err != nil {
		t.Fatal(err)
	}

	var paged []*abstraction.Release
	cursor := ""
	pages := 0
	for {
		res, err := e.CohortQuery(context.Background(), &Request{
			Cohort: Cohort{Contributors: []string{"alice", "bob"}},
			Limit:  2, Cursor: cursor,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Releases) > 2 {
			t.Fatalf("page of %d releases exceeds limit 2", len(res.Releases))
		}
		paged = append(paged, res.Releases...)
		pages++
		if res.Cursor == "" {
			break
		}
		cursor = res.Cursor
		if pages > 10 {
			t.Fatal("pagination does not terminate")
		}
	}
	if pages != 3 {
		t.Errorf("5 releases at limit 2 took %d pages, want 3", pages)
	}
	if len(paged) != len(oneShot.Releases) {
		t.Fatalf("paged %d releases, one-shot %d", len(paged), len(oneShot.Releases))
	}
	for i := range paged {
		if !paged[i].Start.Equal(oneShot.Releases[i].Start) || paged[i].Contributor != oneShot.Releases[i].Contributor {
			t.Errorf("page item %d = %s@%v, one-shot %s@%v", i,
				paged[i].Contributor, paged[i].Start, oneShot.Releases[i].Contributor, oneShot.Releases[i].Start)
		}
	}
}

func TestCredentialCacheAndSingleFlight(t *testing.T) {
	stores := map[string]*fakeStore{
		"alice": {rels: []*abstraction.Release{rel("alice", 0)}},
		"bob":   {rels: []*abstraction.Release{rel("bob", time.Hour)}},
	}
	e, b := deployFake(stores)
	b.connectDelay = 10 * time.Millisecond // force concurrent queries to overlap in Connect

	const parallel = 4
	var wg sync.WaitGroup
	errs := make([]error, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.CohortQuery(context.Background(), &Request{Cohort: Cohort{Contributors: []string{"alice", "bob"}}})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"alice", "bob"} {
		if n := b.connects(name); n != 1 {
			t.Errorf("%d Connect calls for %s across %d concurrent queries, want 1 (single-flight + cache)", n, name, parallel)
		}
	}
	// A later query must also reuse the vaulted credentials.
	if _, err := e.CohortQuery(context.Background(), &Request{Cohort: Cohort{Contributors: []string{"alice"}}}); err != nil {
		t.Fatal(err)
	}
	if n := b.connects("alice"); n != 1 {
		t.Errorf("follow-up query re-connected (%d calls)", n)
	}
}

func TestPartialFailureReports(t *testing.T) {
	unreachable := &url.Error{Op: "Post", URL: "mem://carol", Err: errors.New("connection refused")}
	denied := &resilience.StatusError{Code: 401, Msg: "bad key"}
	stores := map[string]*fakeStore{
		"alice": {rels: []*abstraction.Release{rel("alice", 0), rel("alice", time.Hour)}},
		"bob":   {delay: 500 * time.Millisecond}, // past the per-store deadline
		"carol": {errs: []error{unreachable, unreachable, unreachable}},
		"dave":  {errs: []error{denied, denied, denied}},
	}
	e, _ := deployFake(stores)
	res, err := e.CohortQuery(context.Background(), &Request{
		Cohort:          Cohort{Contributors: []string{"alice", "bob", "carol", "dave"}},
		PerStoreTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("three stores failed; result must be partial")
	}
	if len(res.Releases) != 2 {
		t.Fatalf("reachable data: %d releases, want alice's 2", len(res.Releases))
	}
	want := map[string]Outcome{
		"alice": OutcomeOK,
		"bob":   OutcomeTimeout,
		"carol": OutcomeUnreachable,
		"dave":  OutcomeDenied,
	}
	if len(res.Reports) != len(want) {
		t.Fatalf("%d reports, want %d", len(res.Reports), len(want))
	}
	for _, rep := range res.Reports {
		if rep.Outcome != want[rep.Contributor] {
			t.Errorf("%s outcome = %s, want %s (err %q)", rep.Contributor, rep.Outcome, want[rep.Contributor], rep.Error)
		}
		if wantMissing := rep.Contributor != "alice"; rep.Missing != wantMissing {
			t.Errorf("%s missing = %v, want %v", rep.Contributor, rep.Missing, wantMissing)
		}
		if rep.Outcome != OutcomeOK && rep.Error == "" {
			t.Errorf("%s failed without an error detail", rep.Contributor)
		}
	}
}

func TestUnknownContributorIsExplicit(t *testing.T) {
	stores := map[string]*fakeStore{"alice": {rels: []*abstraction.Release{rel("alice", 0)}}}
	e, _ := deployFake(stores)
	res, err := e.CohortQuery(context.Background(), &Request{
		Cohort: Cohort{Contributors: []string{"alice", "ghost"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("a cohort member outside the directory must flag the result partial")
	}
	var ghost *StoreReport
	for i := range res.Reports {
		if res.Reports[i].Contributor == "ghost" {
			ghost = &res.Reports[i]
		}
	}
	if ghost == nil {
		t.Fatal("ghost has no report — silent drop")
	}
	if !ghost.Missing || ghost.Error == "" {
		t.Errorf("ghost report %+v must be missing with a reason", ghost)
	}
}

func TestListAndStudySelectors(t *testing.T) {
	stores := map[string]*fakeStore{
		"alice": {rels: []*abstraction.Release{rel("alice", 0)}},
		"bob":   {rels: []*abstraction.Release{rel("bob", time.Hour)}},
	}
	e, b := deployFake(stores)
	b.lists = map[string][]string{"pilot": {"alice"}}
	b.rosters = map[string][]string{"asthma": {"alice", "bob"}}

	res, err := e.CohortQuery(context.Background(), &Request{Cohort: Cohort{List: "pilot"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 1 || res.Releases[0].Contributor != "alice" {
		t.Fatalf("list cohort = %+v", res.Releases)
	}

	res, err = e.CohortQuery(context.Background(), &Request{Cohort: Cohort{Study: "asthma"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Releases) != 2 {
		t.Fatalf("study cohort released %d, want 2", len(res.Releases))
	}
	if _, err := e.CohortQuery(context.Background(), &Request{Cohort: Cohort{Study: "unknown"}}); err == nil {
		t.Fatal("unknown study must fail the request, not return empty")
	}
}

func TestHedgedRequestBeatsStraggler(t *testing.T) {
	// First call straggles, the hedge answers quickly.
	slowOnce := &stragglerStore{
		inner:      &fakeStore{rels: []*abstraction.Release{rel("alice", 0)}},
		firstDelay: 300 * time.Millisecond,
	}
	e, _ := deployFake(map[string]*fakeStore{"alice": {}})
	e.Dial = func(string) Store { return slowOnce }

	start := time.Now()
	res, err := e.CohortQuery(context.Background(), &Request{
		Cohort:          Cohort{Contributors: []string{"alice"}},
		HedgeAfter:      20 * time.Millisecond,
		PerStoreTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(res.Releases) != 1 {
		t.Fatalf("hedged query released %d, want 1", len(res.Releases))
	}
	rep := res.Reports[0]
	if !rep.Hedged || !rep.HedgeWon {
		t.Errorf("report %+v: want hedged and hedge-won", rep)
	}
	if elapsed >= 300*time.Millisecond {
		t.Errorf("hedge did not rescue the straggler: took %v", elapsed)
	}
}

// stragglerStore delays only the first call, modeling a straggling
// replica.
type stragglerStore struct {
	inner      *fakeStore
	firstDelay time.Duration
	calls      atomic.Int32
}

func (s *stragglerStore) QueryCtx(ctx context.Context, key auth.APIKey, q *query.Query) ([]*abstraction.Release, error) {
	if s.calls.Add(1) == 1 {
		select {
		case <-time.After(s.firstDelay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s.inner.QueryCtx(ctx, key, q)
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Outcome
	}{
		{nil, OutcomeOK},
		{context.DeadlineExceeded, OutcomeTimeout},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), OutcomeTimeout},
		{&resilience.StatusError{Code: 401, Msg: "x"}, OutcomeDenied},
		{&resilience.StatusError{Code: 403, Msg: "x"}, OutcomeDenied},
		{&resilience.StatusError{Code: 404, Msg: "x"}, OutcomeDenied},
		{&resilience.StatusError{Code: 503, Msg: "x"}, OutcomeUnreachable},
		{&resilience.StatusError{Code: 429, Msg: "x"}, OutcomeShed},
		{fmt.Errorf("skip: %w", resilience.ErrCircuitOpen), OutcomeShed},
		{&resilience.StatusError{Code: 400, Msg: "x"}, OutcomeError},
		{&url.Error{Op: "Post", URL: "u", Err: errors.New("refused")}, OutcomeUnreachable},
		{errors.New("weird"), OutcomeError},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("classify(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

func TestCursorRoundTrip(t *testing.T) {
	st := &cursorState{Consumed: map[string]int{"alice": 3, "bob": 1}}
	enc := encodeCursor(st)
	if enc == "" {
		t.Fatal("non-empty state encoded to empty cursor")
	}
	dec, err := decodeCursor(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Consumed["alice"] != 3 || dec.Consumed["bob"] != 1 {
		t.Fatalf("round trip = %+v", dec.Consumed)
	}
	if _, err := decodeCursor("!!!not-base64!!!"); err == nil {
		t.Fatal("garbage cursor must be rejected")
	}
	empty, err := decodeCursor("")
	if err != nil || len(empty.Consumed) != 0 {
		t.Fatalf("empty cursor = %+v, %v", empty, err)
	}
}

// TestBreakerSkipsTrippedStore proves scatter-gather stops touching a
// store once its breaker trips: the dead member reports shed (not
// unreachable), healthy members keep answering, and total calls against
// the dead store stay at the trip threshold.
func TestBreakerSkipsTrippedStore(t *testing.T) {
	dead := &fakeStore{}
	for i := 0; i < 100; i++ {
		dead.errs = append(dead.errs, &resilience.StatusError{Code: 503, Msg: "down"})
	}
	stores := map[string]*fakeStore{
		"alice": {rels: []*abstraction.Release{rel("alice", 0)}},
		"bob":   dead,
	}
	e, _ := deployFake(stores)
	e.Breakers = overload.NewBreakerSet(overload.BreakerConfig{FailureThreshold: 3, OpenFor: time.Hour})

	ctx := context.Background()
	req := func() *Request {
		return &Request{Cohort: Cohort{Contributors: []string{"alice", "bob"}}, NoHedge: true}
	}
	var lastShed bool
	for i := 0; i < 10; i++ {
		res, err := e.CohortQuery(ctx, req())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial {
			t.Fatalf("query %d: dead member must make the result partial", i)
		}
		for _, rep := range res.Reports {
			switch rep.Contributor {
			case "alice":
				if rep.Outcome != OutcomeOK {
					t.Fatalf("query %d: healthy store outcome %s", i, rep.Outcome)
				}
			case "bob":
				lastShed = rep.Outcome == OutcomeShed
				if rep.Outcome != OutcomeUnreachable && rep.Outcome != OutcomeShed {
					t.Fatalf("query %d: dead store outcome %s", i, rep.Outcome)
				}
			}
		}
	}
	if !lastShed {
		t.Fatal("tripped store must report shed once the breaker opens")
	}
	if got := dead.calls.Load(); got != 3 {
		t.Fatalf("dead store saw %d calls, want exactly the trip threshold 3", got)
	}
	if stores["alice"].calls.Load() != 10 {
		t.Fatalf("healthy store saw %d calls, want 10", stores["alice"].calls.Load())
	}
}
