package rules

import (
	"encoding/json"
	"fmt"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/timeutil"
)

// Rule JSON follows the paper's Fig. 4 shape. A rule document is an object
// (or an array of objects for a rule set):
//
//	{ "Consumer": ["Bob"],
//	  "LocationLabel": ["UCLA"],
//	  "RepeatTime": { "Day": ["Mon","Tue"], "HourMin": ["9:00am","6:00pm"] },
//	  "Context": ["Conversation"],
//	  "Action": { "Abstraction": { "Stress": "NotShared" } } }
//
// "Action" is either the string "Allow"/"Deny" or an object with an
// "Abstraction" map whose keys are "Location", "Time", or a context
// category, and whose values are Table 1(b) option names. Scalar condition
// fields also accept single values where Fig. 4 uses arrays, and
// "RepeatTime"/"TimeRange" accept an object or an array of objects.

type wireRepeat struct {
	Day     []string `json:"Day"`
	HourMin []string `json:"HourMin"`
}

type wireRange struct {
	Start string `json:"Start"`
	End   string `json:"End"`
}

type wireRule struct {
	ID            string          `json:"ID,omitempty"`
	Description   string          `json:"Description,omitempty"`
	Consumer      stringList      `json:"Consumer,omitempty"`
	Group         stringList      `json:"Group,omitempty"`
	Study         stringList      `json:"Study,omitempty"`
	LocationLabel stringList      `json:"LocationLabel,omitempty"`
	Region        json.RawMessage `json:"Region,omitempty"`
	TimeRange     json.RawMessage `json:"TimeRange,omitempty"`
	RepeatTime    json.RawMessage `json:"RepeatTime,omitempty"`
	Sensor        stringList      `json:"Sensor,omitempty"`
	Context       stringList      `json:"Context,omitempty"`
	Action        json.RawMessage `json:"Action"`
}

// stringList unmarshals either a JSON string or an array of strings.
type stringList []string

func (l *stringList) UnmarshalJSON(data []byte) error {
	var one string
	if err := json.Unmarshal(data, &one); err == nil {
		*l = []string{one}
		return nil
	}
	var many []string
	if err := json.Unmarshal(data, &many); err != nil {
		return fmt.Errorf("expected string or array of strings: %w", err)
	}
	*l = many
	return nil
}

func (l stringList) MarshalJSON() ([]byte, error) {
	return json.Marshal([]string(l))
}

// objectList unmarshals either one JSON object or an array of objects into
// the given slice-appending callback.
func objectList(raw json.RawMessage, appendOne func(json.RawMessage) error) error {
	if len(raw) == 0 {
		return nil
	}
	var many []json.RawMessage
	if err := json.Unmarshal(raw, &many); err == nil {
		for _, m := range many {
			if err := appendOne(m); err != nil {
				return err
			}
		}
		return nil
	}
	return appendOne(raw)
}

// timeRangeWire is the RFC3339 layout used for TimeRange bounds.
const timeRangeWire = time.RFC3339

// UnmarshalRule parses one Fig. 4 rule object.
func UnmarshalRule(data []byte) (*Rule, error) {
	var w wireRule
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("rules: bad rule JSON: %w", err)
	}
	r := &Rule{
		ID:             w.ID,
		Description:    w.Description,
		Consumers:      w.Consumer,
		Groups:         append(append([]string(nil), w.Group...), w.Study...),
		LocationLabels: w.LocationLabel,
		Sensors:        ExpandSensorNames(w.Sensor),
	}
	for _, c := range w.Context {
		label, err := ParseContextLabel(c)
		if err != nil {
			return nil, err
		}
		r.Contexts = append(r.Contexts, label)
	}
	if err := objectList(w.Region, func(m json.RawMessage) error {
		var rg geo.Region
		if err := json.Unmarshal(m, &rg); err != nil {
			return fmt.Errorf("rules: bad Region: %w", err)
		}
		if !rg.HasGeometry() {
			return fmt.Errorf("rules: Region without geometry")
		}
		r.Regions = append(r.Regions, rg)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := objectList(w.TimeRange, func(m json.RawMessage) error {
		var wr wireRange
		if err := json.Unmarshal(m, &wr); err != nil {
			return fmt.Errorf("rules: bad TimeRange: %w", err)
		}
		var start, end time.Time
		var err error
		if wr.Start != "" {
			if start, err = time.Parse(timeRangeWire, wr.Start); err != nil {
				return fmt.Errorf("rules: bad TimeRange.Start: %w", err)
			}
		}
		if wr.End != "" {
			if end, err = time.Parse(timeRangeWire, wr.End); err != nil {
				return fmt.Errorf("rules: bad TimeRange.End: %w", err)
			}
		}
		rng, err := timeutil.NewRange(start, end)
		if err != nil {
			return err
		}
		r.TimeRanges = append(r.TimeRanges, rng)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := objectList(w.RepeatTime, func(m json.RawMessage) error {
		var wr wireRepeat
		if err := json.Unmarshal(m, &wr); err != nil {
			return fmt.Errorf("rules: bad RepeatTime: %w", err)
		}
		rep, err := timeutil.ParseRepeated(wr.Day, wr.HourMin)
		if err != nil {
			return err
		}
		r.RepeatTimes = append(r.RepeatTimes, rep)
		return nil
	}); err != nil {
		return nil, err
	}
	action, err := parseAction(w.Action)
	if err != nil {
		return nil, err
	}
	r.Action = action
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

func parseAction(raw json.RawMessage) (Action, error) {
	if len(raw) == 0 {
		return Action{}, fmt.Errorf("rules: rule has no Action")
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		switch s {
		case "Allow", "allow":
			return Allow(), nil
		case "Deny", "deny":
			return Deny(), nil
		default:
			return Action{}, fmt.Errorf("rules: unknown action %q", s)
		}
	}
	var obj struct {
		Abstraction map[string]string `json:"Abstraction"`
	}
	if err := json.Unmarshal(raw, &obj); err != nil || len(obj.Abstraction) == 0 {
		return Action{}, fmt.Errorf("rules: action must be \"Allow\", \"Deny\", or {\"Abstraction\": {...}}")
	}
	spec := AbstractionSpec{Contexts: make(map[Category]Level)}
	for key, val := range obj.Abstraction {
		switch key {
		case "Location", "location":
			g, err := geo.ParseLocationGranularity(val)
			if err != nil {
				return Action{}, err
			}
			spec.Location = &g
		case "Time", "time":
			g, err := timeutil.ParseGranularity(val)
			if err != nil {
				return Action{}, err
			}
			spec.Time = &g
		default:
			cat, err := parseCategory(key)
			if err != nil {
				return Action{}, err
			}
			lvl, err := ParseLevel(cat, val)
			if err != nil {
				return Action{}, err
			}
			spec.Contexts[cat] = lvl
		}
	}
	if len(spec.Contexts) == 0 {
		spec.Contexts = nil
	}
	return Abstract(spec), nil
}

func parseCategory(s string) (Category, error) {
	for _, cat := range Categories() {
		if string(cat) == s {
			return cat, nil
		}
	}
	return "", fmt.Errorf("rules: unknown abstraction key %q (want Location, Time, or a context category)", s)
}

// MarshalRule renders a rule in the Fig. 4 JSON shape.
func MarshalRule(r *Rule) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	w := map[string]any{}
	if r.ID != "" {
		w["ID"] = r.ID
	}
	if r.Description != "" {
		w["Description"] = r.Description
	}
	if len(r.Consumers) > 0 {
		w["Consumer"] = r.Consumers
	}
	if len(r.Groups) > 0 {
		w["Group"] = r.Groups
	}
	if len(r.LocationLabels) > 0 {
		w["LocationLabel"] = r.LocationLabels
	}
	if len(r.Regions) > 0 {
		w["Region"] = r.Regions
	}
	if len(r.TimeRanges) > 0 {
		var rs []wireRange
		for _, rng := range r.TimeRanges {
			var wr wireRange
			if !rng.Start.IsZero() {
				wr.Start = rng.Start.Format(timeRangeWire)
			}
			if !rng.End.IsZero() {
				wr.End = rng.End.Format(timeRangeWire)
			}
			rs = append(rs, wr)
		}
		w["TimeRange"] = rs
	}
	if len(r.RepeatTimes) > 0 {
		var rs []wireRepeat
		for _, rep := range r.RepeatTimes {
			from, to := rep.Window()
			wr := wireRepeat{Day: rep.DayNames()}
			if from != to {
				wr.HourMin = []string{from.String(), to.String()}
			}
			rs = append(rs, wr)
		}
		w["RepeatTime"] = rs
	}
	if len(r.Sensors) > 0 {
		w["Sensor"] = r.Sensors
	}
	if len(r.Contexts) > 0 {
		w["Context"] = r.Contexts
	}
	switch r.Action.Kind {
	case ActionAllow:
		w["Action"] = "Allow"
	case ActionDeny:
		w["Action"] = "Deny"
	case ActionAbstract:
		abs := map[string]string{}
		spec := r.Action.Abstraction
		if spec.Location != nil {
			abs["Location"] = spec.Location.String()
		}
		if spec.Time != nil {
			abs["Time"] = spec.Time.String()
		}
		for cat, l := range spec.Contexts {
			abs[string(cat)] = l.String()
		}
		w["Action"] = map[string]any{"Abstraction": abs}
	}
	return json.Marshal(w)
}

// UnmarshalRuleSet parses an array of Fig. 4 rule objects (or a single
// object) into a rule list.
func UnmarshalRuleSet(data []byte) ([]*Rule, error) {
	var raws []json.RawMessage
	if err := json.Unmarshal(data, &raws); err != nil {
		r, err2 := UnmarshalRule(data)
		if err2 != nil {
			return nil, fmt.Errorf("rules: rule set is neither array nor object: %w", err2)
		}
		return []*Rule{r}, nil
	}
	out := make([]*Rule, 0, len(raws))
	for i, raw := range raws {
		r, err := UnmarshalRule(raw)
		if err != nil {
			return nil, fmt.Errorf("rules: rule %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// MarshalRuleSet renders a rule list as a JSON array.
func MarshalRuleSet(rs []*Rule) ([]byte, error) {
	parts := make([]json.RawMessage, len(rs))
	for i, r := range rs {
		b, err := MarshalRule(r)
		if err != nil {
			return nil, fmt.Errorf("rules: rule %d (%s): %w", i, r.ID, err)
		}
		parts[i] = b
	}
	return json.Marshal(parts)
}
