package rules

import (
	"testing"
)

// Fuzz targets for the two parsers that consume untrusted input: rule JSON
// arrives from web UIs and broker sync, and must never panic or accept a
// document that fails validation. Run with `go test -fuzz=FuzzRuleJSON`;
// under plain `go test` the seed corpus runs as regression cases.

func FuzzRuleJSON(f *testing.F) {
	seeds := []string{
		`{"Action":"Allow"}`,
		`{"Action":"Deny"}`,
		`[{"Consumer":["Bob"],"LocationLabel":["UCLA"],"Action":"Allow"},
		  {"Consumer":["Bob"],"RepeatTime":{"Day":["Mon"],"HourMin":["9:00am","6:00pm"]},
		   "Context":["Conversation"],"Action":{"Abstraction":{"Stress":"NotShared"}}}]`,
		`{"Region":{"rect":{"minLat":34,"minLon":-119,"maxLat":35,"maxLon":-118}},"Action":"Deny"}`,
		`{"Region":{"polygon":[{"lat":34,"lon":-119},{"lat":35,"lon":-118.5},{"lat":34,"lon":-118}]},"Action":"Allow"}`,
		`{"Action":{"Abstraction":{"Location":"City","Time":"Hour","Activity":"Move/Not Move"}}}`,
		`{"TimeRange":{"Start":"2011-02-01T00:00:00Z"},"Action":"Allow"}`,
		`{"Sensor":"Accelerometer","Action":"Allow"}`,
		`null`, `[]`, `{}`, `[[]]`, `{"Action":7}`,
		`{"Action":{"Abstraction":{"Stress":[]}}}`,
		`{"RepeatTime":[{"Day":["Mon"]},{"Day":["Tue"]}],"Action":"Deny"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := UnmarshalRuleSet(data)
		if err != nil {
			return
		}
		// Anything accepted must be valid, marshal cleanly, and re-parse to
		// an equally valid rule set.
		for _, r := range rs {
			if verr := r.Validate(); verr != nil {
				t.Fatalf("accepted invalid rule: %v\ninput: %s", verr, data)
			}
		}
		out, err := MarshalRuleSet(rs)
		if err != nil {
			t.Fatalf("accepted rules do not marshal: %v\ninput: %s", err, data)
		}
		back, err := UnmarshalRuleSet(out)
		if err != nil {
			t.Fatalf("marshaled rules do not re-parse: %v\noutput: %s", err, out)
		}
		if len(back) != len(rs) {
			t.Fatalf("round trip changed rule count: %d -> %d", len(rs), len(back))
		}
		// And the engine must compile them without panicking.
		if _, err := NewEngine(rs, nil); err != nil {
			t.Fatalf("accepted rules do not compile: %v", err)
		}
	})
}

func FuzzParseContextLabel(f *testing.F) {
	for _, s := range []string{"Drive", "driving", "not moving", "Stress", "", "x", "NOTSMOKING"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		label, err := ParseContextLabel(s)
		if err != nil {
			return
		}
		if _, ok := LabelCategory(label); !ok {
			t.Fatalf("accepted label %q (from %q) has no category", label, s)
		}
	})
}
