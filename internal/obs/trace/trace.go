// Package trace is SensorSafe's stdlib-only distributed-tracing layer.
// Spans form real trees — a 128-bit trace ID shared by every span of one
// logical request, a 64-bit span ID per operation, and a parent link —
// and a W3C-style `traceparent` header carries the active span across
// process boundaries (consumer→broker, broker→store provisioning,
// phone→store upload, federated scatter-gather, stream delivery).
// Completed spans land in a bounded in-process Collector that always
// keeps slow and failed traces (see collector.go) and serves them as
// JSON from /debug/traces.
//
// The privacy twist over a generic tracer: the datastore's release path
// annotates its spans with decision provenance (matched rule IDs, rule
// version, allow/abstract/deny, granted abstraction level), so every
// release in a query result is explainable from its trace, and audit
// records carry the trace ID as a cross-reference.
//
// The package deliberately imports nothing from the rest of the module:
// internal/obs layers its span timers on top of it, and everything else
// reaches tracing through obs.Span or this package directly.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the wire header carrying trace context between services:
// "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>" (W3C Trace
// Context shape; only version 00 is understood).
const Header = "traceparent"

// TraceID identifies one end-to-end request tree.
type TraceID [16]byte

// SpanID identifies one operation within a trace.
type SpanID [8]byte

// String returns the 32-hex-character form of the trace ID.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 16-hex-character form of the span ID.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext is the propagated part of a span: enough to parent remote
// children and to format a traceparent header.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Traceparent formats the context as a traceparent header value.
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", sc.Trace, sc.Span)
}

// ParseTraceparent parses a traceparent header. It accepts only version
// 00 and rejects all-zero IDs, as the W3C spec requires.
func ParseTraceparent(h string) (SpanContext, bool) {
	// "00-" + 32 + "-" + 16 + "-" + 2
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.Trace[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.DecodeString(h[53:55]); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// idSeq backs ID generation when the entropy source fails; mixed with
// distinct constants so trace and span IDs stay distinguishable.
var idSeq atomic.Uint64

func newTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		n := idSeq.Add(1)
		for i := 0; i < 8; i++ {
			t[15-i] = byte(n >> (8 * i))
		}
		t[0] = 0x5e // keep the fallback non-zero
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	if _, err := rand.Read(s[:]); err != nil {
		n := idSeq.Add(1)
		for i := 0; i < 7; i++ {
			s[7-i] = byte(n >> (8 * i))
		}
		s[0] = 0x5a
	}
	return s
}

// attrKind discriminates the typed payload of an Attr.
type attrKind uint8

const (
	kindString attrKind = iota
	kindInt64
	kindBool
	kindFloat64
)

// Attr is one typed key/value annotation on a span or event. The value
// lives in a typed field rather than an `any` (à la slog.Value), so
// building an attribute never boxes — annotating a span on the hot path
// costs no per-attribute allocation. Values are restricted to the
// JSON-friendly types the constructors below produce.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	i64  int64
	f64  float64
}

// Value returns the attribute's payload as the JSON-friendly `any` the
// snapshot path serializes (strings, int64, bool, float64).
func (a Attr) Value() any {
	switch a.kind {
	case kindInt64:
		return a.i64
	case kindBool:
		return a.i64 != 0
	case kindFloat64:
		return a.f64
	default:
		return a.str
	}
}

// String makes a string attribute.
func String(k, v string) Attr { return Attr{Key: k, kind: kindString, str: v} }

// Int makes an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, kind: kindInt64, i64: int64(v)} }

// Int64 makes a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, kind: kindInt64, i64: v} }

// Bool makes a boolean attribute.
func Bool(k string, v bool) Attr {
	a := Attr{Key: k, kind: kindBool}
	if v {
		a.i64 = 1
	}
	return a
}

// Float64 makes a float attribute.
func Float64(k string, v float64) Attr { return Attr{Key: k, kind: kindFloat64, f64: v} }

// Duration records a duration attribute in fractional milliseconds.
func Duration(k string, v time.Duration) Attr {
	return Float64(k, float64(v.Microseconds())/1000)
}

// spanAttrsInline sizes a span's inline attribute buffer; typical spans
// carry a handful of attrs, so they never allocate a separate slice.
const spanAttrsInline = 8

// Span is one timed operation in a trace tree. The zero of *Span is nil,
// and every method is nil-safe, so disabled tracing costs one branch.
type Span struct {
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time
	col    *Collector

	mu sync.Mutex
	// guarded by mu
	attrs []Attr
	// attrsBuf backs attrs until it outgrows the inline capacity;
	// guarded by mu
	attrsBuf [spanAttrsInline]Attr
	// guarded by mu
	events []Event
	// guarded by mu
	errMsg string
	// guarded by mu
	failed bool
	// guarded by mu
	ended bool
	// end is the End timestamp, meaningful once ended; guarded by mu
	end time.Time
}

// Event is a point-in-time annotation inside a span (e.g. a retry).
type Event struct {
	Time  time.Time
	Name  string
	Attrs []Attr
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceIDString returns the span's 32-hex trace ID, "" for nil spans.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.sc.Trace.String()
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
	s.mu.Unlock()
}

// AddEvent records a timestamped event on the span.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.events = append(s.events, Event{Time: time.Now(), Name: name, Attrs: attrs})
	}
	s.mu.Unlock()
}

// SetError marks the span failed with the error's message. A nil error
// is a no-op, so call sites can pass their outcome unconditionally.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.failed = true
		s.errMsg = err.Error()
	}
	s.mu.Unlock()
}

// End completes the span and hands it to the collector. Second and later
// calls are no-ops. The span is stored as-is — serialization to JSON is
// deferred until a reader asks — so ending a span costs no encoding.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = end
	failed := s.failed
	col := s.col
	s.mu.Unlock()
	if col != nil {
		col.record(s, end.Sub(s.start), failed)
	}
}

// window returns the span's start and end instants (read path; the span
// is already ended when a collector bucket holds it).
func (s *Span) window() (time.Time, time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start, s.end
}

// snapshot freezes the span into its JSON form (read path).
func (s *Span) snapshot() *SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := &SpanData{
		TraceID:    s.sc.Trace.String(),
		SpanID:     s.sc.Span.String(),
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(s.end.Sub(s.start).Microseconds()) / 1000,
		Status:     "ok",
		Error:      s.errMsg,
	}
	if s.failed {
		sd.Status = "error"
	}
	if !s.parent.IsZero() {
		sd.ParentID = s.parent.String()
	}
	if len(s.attrs) > 0 {
		sd.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			sd.Attrs[a.Key] = a.Value()
		}
	}
	for _, e := range s.events {
		ed := EventData{Name: e.Name, Time: e.Time}
		if len(e.Attrs) > 0 {
			ed.Attrs = make(map[string]any, len(e.Attrs))
			for _, a := range e.Attrs {
				ed.Attrs[a.Key] = a.Value()
			}
		}
		sd.Events = append(sd.Events, ed)
	}
	return sd
}

// disabled flips the whole subsystem off (benchmarking the no-trace
// baseline); the zero value means enabled.
var disabled atomic.Bool

// SetEnabled turns span creation on or off process-wide.
func SetEnabled(v bool) { disabled.Store(!v) }

// Enabled reports whether spans are being created.
func Enabled() bool { return !disabled.Load() }

// parentKey stores the active span (or remote parent) in a context.
type parentKey struct{}

// parentRef is what a context carries: the propagated IDs plus the local
// span when the parent lives in this process (nil for remote parents).
type parentRef struct {
	sc   SpanContext
	span *Span
}

// ContextWith returns ctx carrying s as the active span.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, parentKey{}, parentRef{sc: s.sc, span: s})
}

// FromContext returns the context's active local span, nil when the
// parent is remote or absent.
func FromContext(ctx context.Context) *Span {
	ref, _ := ctx.Value(parentKey{}).(parentRef)
	return ref.span
}

// SpanContextOf returns the propagated span context active in ctx,
// whether its span is local or remote (zero when absent).
func SpanContextOf(ctx context.Context) SpanContext {
	ref, _ := ctx.Value(parentKey{}).(parentRef)
	return ref.sc
}

// IDFromContext returns the 32-hex trace ID active in ctx, or "".
func IDFromContext(ctx context.Context) string {
	sc := SpanContextOf(ctx)
	if !sc.Valid() {
		return ""
	}
	return sc.Trace.String()
}

// Traceparent formats the context's active span as a traceparent header
// value, "" when no span is active.
func Traceparent(ctx context.Context) string {
	sc := SpanContextOf(ctx)
	if !sc.Valid() {
		return ""
	}
	return sc.Traceparent()
}

// WithRemoteParent installs the parsed traceparent header as the
// context's parent, so the next Start joins the caller's trace. Invalid
// or empty headers leave ctx unchanged.
func WithRemoteParent(ctx context.Context, header string) context.Context {
	sc, ok := ParseTraceparent(header)
	if !ok {
		return ctx
	}
	return context.WithValue(ctx, parentKey{}, parentRef{sc: sc})
}

// Start begins a span named name: a child of the context's active span
// (local or remote) when one exists, a new root otherwise. It returns
// the context carrying the new span plus the span itself; the caller
// must End it. When tracing is disabled it returns (ctx, nil) — all
// *Span methods tolerate nil.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if disabled.Load() {
		return ctx, nil
	}
	sc := SpanContext{Span: newSpanID()}
	var parent SpanID
	if ref, ok := ctx.Value(parentKey{}).(parentRef); ok && ref.sc.Valid() {
		sc.Trace = ref.sc.Trace
		parent = ref.sc.Span
	} else {
		sc.Trace = newTraceID()
	}
	s := &Span{
		sc:     sc,
		parent: parent,
		name:   name,
		start:  time.Now(),
		col:    collectorFrom(ctx),
	}
	s.mu.Lock()
	s.attrs = append(s.attrsBuf[:0], attrs...)
	s.mu.Unlock()
	return context.WithValue(ctx, parentKey{}, parentRef{sc: sc, span: s}), s
}
