package ruleindex

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
)

// base is a Monday midnight UTC, so weekday arithmetic in the generators
// is easy to reason about.
var base = time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)

// denver is a non-UTC zone: recurring windows and the weekly wheel depend
// on the instant's own wall clock, so requests must exercise both.
var denver = time.FixedZone("denver", -7*3600)

// Pools deliberately mix case (and the Unicode long s, which EqualFold
// equates with 's' but strings.ToLower does not) so any canonicalization
// mismatch between compile time and match time shows up.
var (
	consumerPool = []string{"alice", "Bob", "CAROL", "dave", "ſtefan", "Stefan"}
	groupPool    = []string{"study-a", "Study-B", "cohort1", "COHORT1"}
	contextPool  = []string{"Walk", "walking", "STILL", "Run", "Stressed", "NotStressed", "Smoking", "Conversation", "NoConversation"}
	sensorPool   = []string{"ECG", "ecg", "Respiration", "Microphone", "AccelX", "AccelY", "GPS", "Latitude", "SkinTemperature"}
	labelPool    = []string{"home", "Work", "UCLA", "gym", "nowhere-defined"}
)

func testGazetteer(t testing.TB) *geo.Gazetteer {
	t.Helper()
	gaz := geo.NewGazetteer()
	define := func(label string, minLat, minLon, maxLat, maxLon float64) {
		r, err := geo.NewRect(geo.Point{Lat: minLat, Lon: minLon}, geo.Point{Lat: maxLat, Lon: maxLon})
		if err != nil {
			t.Fatalf("rect: %v", err)
		}
		if err := gaz.Define(label, geo.Region{Rect: r}); err != nil {
			t.Fatalf("define %s: %v", label, err)
		}
	}
	define("home", 34.00, -118.50, 34.02, -118.48)
	define("work", 34.05, -118.45, 34.07, -118.43)
	define("ucla", 34.06, -118.45, 34.08, -118.43) // overlaps work
	define("gym", 33.98, -118.52, 33.99, -118.51)
	return gaz
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

func pickSome(rng *rand.Rand, pool []string, max int) []string {
	n := rng.Intn(max + 1)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pick(rng, pool))
	}
	return out
}

func genRegion(rng *rand.Rand) geo.Region {
	switch rng.Intn(4) {
	case 0: // continent-scale rect: lands on the always-candidate list
		return geo.Region{Rect: geo.Rect{MinLat: -60, MinLon: -170, MaxLat: 60, MaxLon: 170}}
	case 1: // triangle near the test area
		la, lo := 33.9+rng.Float64()*0.3, -118.6+rng.Float64()*0.3
		return geo.Region{Polygon: geo.Polygon{
			{Lat: la, Lon: lo}, {Lat: la + 0.04, Lon: lo + 0.01}, {Lat: la + 0.01, Lon: lo + 0.05},
		}}
	default: // small rect near the test area
		la, lo := 33.9+rng.Float64()*0.3, -118.6+rng.Float64()*0.3
		return geo.Region{Rect: geo.Rect{MinLat: la, MinLon: lo, MaxLat: la + 0.03, MaxLon: lo + 0.03}}
	}
}

func genRepeated(t testing.TB, rng *rand.Rand) timeutil.Repeated {
	t.Helper()
	var days []time.Weekday
	for d := time.Sunday; d <= time.Saturday; d++ {
		if rng.Intn(3) == 0 {
			days = append(days, d)
		}
	}
	var from, to timeutil.ClockTime
	switch rng.Intn(4) {
	case 0: // whole day
	case 1: // wraps midnight
		from = timeutil.ClockTime(18*60 + rng.Intn(300))
		to = timeutil.ClockTime(rng.Intn(9 * 60))
	default:
		from = timeutil.ClockTime(rng.Intn(20 * 60))
		to = from + timeutil.ClockTime(1+rng.Intn(6*60))
		if to > timeutil.MinutesPerDay {
			to = timeutil.MinutesPerDay
		}
	}
	rep, err := timeutil.NewRepeated(days, from, to)
	if err != nil {
		t.Fatalf("repeated: %v", err)
	}
	return rep
}

func genRule(t testing.TB, rng *rand.Rand, id int) *rules.Rule {
	t.Helper()
	r := &rules.Rule{}
	if rng.Intn(10) > 0 { // some rules stay anonymous
		r.ID = fmt.Sprintf("r%03d", id)
	}
	r.Consumers = pickSome(rng, consumerPool, 2)
	r.Groups = pickSome(rng, groupPool, 2)
	if rng.Intn(2) == 0 {
		r.LocationLabels = pickSome(rng, labelPool, 2)
	}
	for i := rng.Intn(3); i > 0; i-- {
		r.Regions = append(r.Regions, genRegion(rng))
	}
	for i := rng.Intn(3); i > 0; i-- {
		start := base.Add(time.Duration(rng.Intn(10*24)) * time.Hour)
		rg := timeutil.Range{Start: start, End: start.Add(time.Duration(1+rng.Intn(72)) * time.Hour)}
		switch rng.Intn(5) {
		case 0:
			rg.Start = time.Time{}
		case 1:
			rg.End = time.Time{}
		}
		r.TimeRanges = append(r.TimeRanges, rg)
	}
	for i := rng.Intn(3); i > 0; i-- {
		r.RepeatTimes = append(r.RepeatTimes, genRepeated(t, rng))
	}
	r.Sensors = pickSome(rng, sensorPool, 3)
	r.Contexts = pickSome(rng, contextPool, 2)
	switch rng.Intn(4) {
	case 0:
		r.Action = rules.Deny()
	case 1:
		spec := rules.AbstractionSpec{}
		if rng.Intn(2) == 0 {
			l := []geo.LocationGranularity{geo.LocStreetAddress, geo.LocCity, geo.LocState, geo.LocNotShared}[rng.Intn(4)]
			spec.Location = &l
		}
		if rng.Intn(2) == 0 {
			g := []timeutil.Granularity{timeutil.GranHour, timeutil.GranDay, timeutil.GranNotShared}[rng.Intn(3)]
			spec.Time = &g
		}
		if rng.Intn(2) == 0 || spec.Empty() {
			cat := rules.Categories()[rng.Intn(4)]
			levels := []rules.Level{rules.LevelRaw, rules.LevelBinary, rules.LevelNotShared}
			if cat == rules.CategoryActivity {
				levels = append(levels, rules.LevelModes)
			}
			spec.Contexts = map[rules.Category]rules.Level{cat: levels[rng.Intn(len(levels))]}
		}
		r.Action = rules.Abstract(spec)
	default:
		r.Action = rules.Allow()
	}
	return r
}

func genRequest(rng *rand.Rand) *rules.Request {
	at := base.Add(time.Duration(rng.Int63n(int64(12*24*time.Hour))) - 24*time.Hour)
	if rng.Intn(3) == 0 {
		at = at.In(denver)
	}
	var p geo.Point
	if rng.Intn(5) == 0 {
		p = geo.Point{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*340 - 170}
	} else {
		p = geo.Point{Lat: 33.9 + rng.Float64()*0.3, Lon: -118.6 + rng.Float64()*0.3}
	}
	consumer := pick(rng, append([]string{"nobody", "ALICE"}, consumerPool...))
	return &rules.Request{
		Consumer:       consumer,
		ConsumerGroups: pickSome(rng, groupPool, 2),
		At:             at,
		Location:       p,
		ActiveContexts: pickSome(rng, contextPool, 3),
	}
}

// TestDifferentialDecide is the index ≡ engine harness: generated rule
// sets and requests must produce byte-identical decisions — including the
// Matched rule-ID lists — through the linear engine, the cold index, and
// the warm (cache-hit) index.
func TestDifferentialDecide(t *testing.T) {
	gaz := testGazetteer(t)
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(41)
		rs := make([]*rules.Rule, n)
		for i := range rs {
			rs[i] = genRule(t, rng, i)
		}
		eng, err := rules.NewEngine(rs, gaz)
		if err != nil {
			t.Fatalf("seed %d: engine: %v", seed, err)
		}
		ix, err := New(rs, gaz, Options{Version: uint64(seed)})
		if err != nil {
			t.Fatalf("seed %d: index: %v", seed, err)
		}
		for q := 0; q < 80; q++ {
			req := genRequest(rng)
			want := eng.Decide(req)
			cold := ix.Decide(req)
			// Distinct requests may share a canonical signature, so the
			// first call for THIS request can legally hit the cache; either
			// way it must match the engine byte for byte.
			cold.Cached = false
			if !reflect.DeepEqual(want, cold) {
				t.Fatalf("seed %d req %d: index != engine\nreq: %+v\nengine: %+v\nindex:  %+v", seed, q, req, want, cold)
			}
			warm := ix.Decide(req)
			if !warm.Cached {
				t.Fatalf("seed %d req %d: repeat decision missed the cache", seed, q)
			}
			warm.Cached = false
			if !reflect.DeepEqual(want, warm) {
				t.Fatalf("seed %d req %d: cached decision differs\nengine: %+v\ncached: %+v", seed, q, want, warm)
			}
		}
	}
}

// TestDifferentialNoCache re-runs a differential slice with memoization
// disabled, pinning the pure index path.
func TestDifferentialNoCache(t *testing.T) {
	gaz := testGazetteer(t)
	rng := rand.New(rand.NewSource(99))
	rs := make([]*rules.Rule, 25)
	for i := range rs {
		rs[i] = genRule(t, rng, i)
	}
	eng, err := rules.NewEngine(rs, gaz)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(rs, gaz, Options{CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 200; q++ {
		req := genRequest(rng)
		want, got := eng.Decide(req), ix.Decide(req)
		if got.Cached {
			t.Fatal("cache disabled but decision claims cached")
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("req %d: index != engine\nreq: %+v\nengine: %+v\nindex:  %+v", q, req, want, got)
		}
	}
	if st := ix.Stats(); st.CacheCapacity != 0 || st.CacheEntries != 0 {
		t.Fatalf("disabled cache reports capacity: %+v", st)
	}
}

// TestRecompileDropsStaleDecisions proves the invalidation contract: a
// revocation takes effect on the very next evaluation because a mutation
// compiles a fresh index (new version, empty cache) — the old memo can
// never answer for the new rule set.
func TestRecompileDropsStaleDecisions(t *testing.T) {
	req := &rules.Request{Consumer: "bob", At: base.Add(10 * time.Hour)}

	v1, err := New([]*rules.Rule{{ID: "allow-all", Action: rules.Allow()}}, nil, Options{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := v1.Decide(req); !d.ChannelShared("ECG") {
		t.Fatal("v1 should allow")
	}
	if d := v1.Decide(req); !d.Cached || !d.ChannelShared("ECG") {
		t.Fatal("v1 repeat should be a cache hit and still allow")
	}

	// The contributor revokes: the mutation path compiles a new index.
	v2, err := New([]*rules.Rule{{ID: "deny-all", Action: rules.Deny()}}, nil, Options{Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := v2.Decide(req); d.SharesAnything() || d.Cached {
		t.Fatalf("revocation not immediate: %+v", d)
	}
	if v2.Version() != 2 {
		t.Fatalf("version = %d, want 2", v2.Version())
	}
}

// TestCacheBound fills the cache past capacity and checks the bound holds
// and evictions are counted.
func TestCacheBound(t *testing.T) {
	ix, err := New([]*rules.Rule{{ID: "a", Action: rules.Allow()}}, nil,
		Options{CacheEntries: 32, CacheShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		ix.Decide(&rules.Request{Consumer: fmt.Sprintf("c%d", i), At: base})
	}
	st := ix.Stats()
	if st.CacheEntries > st.CacheCapacity {
		t.Fatalf("cache over bound: %d > %d", st.CacheEntries, st.CacheCapacity)
	}
	if st.CacheEvictions == 0 {
		t.Fatal("expected evictions after overfilling")
	}
	if st.CacheMisses < 500 {
		t.Fatalf("misses = %d, want >= 500", st.CacheMisses)
	}
}

// TestWheelHours pins the hour-of-week coverage of the tricky recurring
// window shapes.
func TestWheelHours(t *testing.T) {
	mk := func(days []time.Weekday, from, to timeutil.ClockTime) timeutil.Repeated {
		rep, err := timeutil.NewRepeated(days, from, to)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	// Monday 9:30–10:30 → Monday hours 9 and 10.
	hs := wheelHours(mk([]time.Weekday{time.Monday}, 9*60+30, 10*60+30))
	want := []int{1*24 + 9, 1*24 + 10}
	if !reflect.DeepEqual(hs, want) {
		t.Fatalf("same-day: got %v want %v", hs, want)
	}
	// Saturday 23:00–01:00 wraps into Sunday.
	hs = wheelHours(mk([]time.Weekday{time.Saturday}, 23*60, 60))
	want = []int{6*24 + 23, 0}
	if !reflect.DeepEqual(hs, want) {
		t.Fatalf("wrap: got %v want %v", hs, want)
	}
	// Whole-day Tuesday covers all 24 buckets.
	hs = wheelHours(mk([]time.Weekday{time.Tuesday}, 0, 0))
	if len(hs) != 24 || hs[0] != 2*24 || hs[23] != 2*24+23 {
		t.Fatalf("whole-day: got %v", hs)
	}
	if got := wheelHours(timeutil.Repeated{}); got != nil {
		t.Fatalf("zero window should cover nothing, got %v", got)
	}
}

// TestIntervalTreeStab cross-checks the tree against a linear scan over
// generated interval sets, including unbounded sides.
func TestIntervalTreeStab(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(30)
		ivs := make([]interval, n)
		for i := range ivs {
			start := base.Add(time.Duration(rng.Intn(200)) * time.Hour)
			iv := interval{start: start, end: start.Add(time.Duration(1+rng.Intn(50)) * time.Hour), rule: int32(i)}
			switch rng.Intn(6) {
			case 0:
				iv.start = time.Time{}
			case 1:
				iv.end = time.Time{}
			}
			ivs[i] = iv
		}
		tree := newIntervalTree(append([]interval(nil), ivs...))
		for q := 0; q < 40; q++ {
			at := base.Add(time.Duration(rng.Intn(260)-30) * time.Hour)
			got := newBitset(n)
			tree.stab(at, got)
			want := newBitset(n)
			for _, iv := range ivs {
				if iv.containsAt(at) {
					want.set(iv.rule)
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: stab(%v) mismatch", trial, at)
			}
		}
	}
}

// TestFoldEqualFold checks Fold's defining property on the tricky pairs.
func TestFoldEqualFold(t *testing.T) {
	pairs := [][2]string{
		{"Bob", "bob"}, {"ſtefan", "Stefan"}, {"STRASSE", "strasse"},
		{"ΣΙΣΥΦΟΣ", "σίσυφος"}, // final sigma folds with capital sigma, the accent does not
	}
	for _, p := range pairs {
		a, b := rules.Fold(p[0]), rules.Fold(p[1])
		if want := strings.EqualFold(p[0], p[1]); (a == b) != want {
			t.Errorf("Fold(%q)=%q Fold(%q)=%q, EqualFold=%v", p[0], a, p[1], b, want)
		}
	}
}
