package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module loading: sslint type-checks the whole module with nothing but
// the standard library (go/parser + go/types + go/importer), matching the
// repo's zero-dependency policy. Module-internal imports resolve against
// packages we have already checked (packages are visited in dependency
// order); standard-library imports resolve through the compiler's export
// data via importer.Default, with a source-level importer as fallback so
// the tool keeps working even when export data is stale.

// Package is one type-checked package of the module.
type Package struct {
	// Path is the import path ("sensorsafe/internal/broker").
	Path string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Module is a fully parsed and type-checked Go module.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path from go.mod ("sensorsafe").
	Path string
	// Fset positions every file in the module (and any fixture packages
	// loaded later through LoadPackage).
	Fset *token.FileSet
	// Pkgs lists the module's packages sorted by import path.
	Pkgs []*Package

	byPath map[string]*types.Package
	imp    *chainImporter
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every package under root (the
// directory containing go.mod), skipping testdata trees, hidden
// directories, and _test.go files.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, goVersion, err := readGoMod(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*types.Package),
	}
	m.imp = &chainImporter{m: m, std: importer.Default()}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	parsed := make(map[string]*Package, len(dirs)) // import path → package
	deps := make(map[string][]string, len(dirs))
	for _, dir := range dirs {
		pkg, imports, err := m.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable non-test files
		}
		parsed[pkg.Path] = pkg
		for _, imp := range imports {
			if imp == modPath || strings.HasPrefix(imp, modPath+"/") {
				deps[pkg.Path] = append(deps[pkg.Path], imp)
			}
		}
	}

	order, err := topoSort(parsed, deps)
	if err != nil {
		return nil, err
	}
	for _, pkg := range order {
		if err := m.check(pkg, goVersion); err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// LoadPackage parses and type-checks a single extra directory (fixture
// packages under testdata) against the already-loaded module, under the
// given synthetic import path. The module's packages and the standard
// library are importable from the fixture.
func (m *Module) LoadPackage(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, _, err := m.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg.Path = importPath
	if err := m.check(pkg, ""); err != nil {
		return nil, err
	}
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory. It returns nil
// (no error) when the directory holds no buildable files.
func (m *Module) parseDir(dir string) (*Package, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, nil, nil
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, nil, err
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	var importList []string
	for imp := range imports {
		importList = append(importList, imp)
	}
	sort.Strings(importList)
	return &Package{Path: path, Dir: dir, Files: files}, importList, nil
}

// check type-checks pkg and registers it for import by later packages.
func (m *Module) check(pkg *Package, goVersion string) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := types.Config{Importer: m.imp, GoVersion: goVersion}
	tpkg, err := cfg.Check(pkg.Path, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-check %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	m.byPath[pkg.Path] = tpkg
	return nil
}

// chainImporter resolves module-internal imports from the packages
// type-checked so far and everything else through the toolchain's export
// data, falling back to source import if export data is unusable.
type chainImporter struct {
	m   *Module
	std types.Importer
	src types.Importer // lazily-built source importer
}

func (ci *chainImporter) Import(path string) (*types.Package, error) {
	if tpkg, ok := ci.m.byPath[path]; ok {
		return tpkg, nil
	}
	if path == ci.m.Path || strings.HasPrefix(path, ci.m.Path+"/") {
		return nil, fmt.Errorf("lint: module package %s not loaded (import cycle or missing dir?)", path)
	}
	tpkg, err := ci.std.Import(path)
	if err == nil {
		return tpkg, nil
	}
	if ci.src == nil {
		ci.src = importer.ForCompiler(ci.m.Fset, "source", nil)
	}
	tpkg, srcErr := ci.src.Import(path)
	if srcErr != nil {
		return nil, fmt.Errorf("lint: import %q: %v (source fallback: %v)", path, err, srcErr)
	}
	return tpkg, nil
}

// packageDirs lists directories under root that may hold Go packages.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// topoSort orders packages so every module-internal dependency precedes
// its importer.
func topoSort(pkgs map[string]*Package, deps map[string][]string) ([]*Package, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		for _, dep := range deps[path] {
			if _, ok := pkgs[dep]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no source directory", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkgs[path])
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// readGoMod extracts the module path and (optional) go version directive.
func readGoMod(path string) (modPath, goVersion string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if after, ok := strings.CutPrefix(line, "module "); ok && modPath == "" {
			modPath = strings.TrimSpace(after)
		}
		if after, ok := strings.CutPrefix(line, "go "); ok && goVersion == "" {
			goVersion = "go" + strings.TrimSpace(after)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("lint: no module directive in %s", path)
	}
	return modPath, goVersion, nil
}
