package stream

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

var t0 = time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC)

// fakeRules is a mutable RuleSource for hub-level tests.
type fakeRules struct {
	mu      sync.Mutex
	engine  *rules.Engine
	version uint64
}

func (f *fakeRules) StreamEngine(string) (rules.Decider, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.engine == nil {
		return nil, f.version, nil
	}
	return f.engine, f.version, nil
}

func (f *fakeRules) StreamGroups(string, string) []string { return nil }

func (f *fakeRules) set(t *testing.T, ruleJSON string) {
	t.Helper()
	rs, err := rules.UnmarshalRuleSet([]byte(ruleJSON))
	if err != nil {
		t.Fatalf("rules: %v", err)
	}
	e, err := rules.NewEngine(rs, nil)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	f.mu.Lock()
	f.engine = e
	f.version++
	f.mu.Unlock()
}

func allowAll(t *testing.T) *fakeRules {
	t.Helper()
	f := &fakeRules{}
	f.set(t, `[{"Action":"Allow"}]`)
	return f
}

// seg builds an n-sample ECG segment starting at start.
func seg(start time.Time, n int) *wavesegment.Segment {
	s := &wavesegment.Segment{
		Contributor: "alice",
		Start:       start,
		Interval:    100 * time.Millisecond,
		Location:    geo.Point{Lat: 34.0, Lon: -118.0},
		Channels:    []string{"ECG"},
	}
	for i := 0; i < n; i++ {
		s.Values = append(s.Values, []float64{float64(i)})
	}
	return s
}

func newHub(src RuleSource, buffer int) *Hub {
	return New(Options{Rules: src, BufferSegments: buffer})
}

func TestSubscribePublishNext(t *testing.T) {
	h := newHub(allowAll(t), 0)
	info, err := h.Subscribe("Bob", "Alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cursor != "0" || info.Resumed {
		t.Fatalf("fresh subscription info = %+v", info)
	}

	h.Publish("alice", seg(t0, 8))
	b, err := h.Next("bob", info.ID, info.Cursor, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 1 || b.Events[0].Kind != KindData {
		t.Fatalf("events = %+v", b.Events)
	}
	ev := b.Events[0]
	if ev.Seq != 1 || ev.Cursor != "1" || b.Cursor != "1" {
		t.Fatalf("cursor bookkeeping wrong: %+v batch cursor %s", ev, b.Cursor)
	}
	if len(ev.Releases) == 0 || ev.Releases[0].Segment == nil ||
		ev.Releases[0].Segment.NumSamples() != 8 {
		t.Fatalf("releases = %+v", ev.Releases)
	}
	if ev.RuleVersion != 1 {
		t.Fatalf("rule version = %d", ev.RuleVersion)
	}

	// Acked everything: an immediate poll returns an empty batch.
	b2, err := h.Next("bob", info.ID, b.Cursor, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Events) != 0 || b2.Cursor != "1" {
		t.Fatalf("expected empty batch at cursor 1, got %+v", b2)
	}
}

func TestNextWakesOnPublish(t *testing.T) {
	h := newHub(allowAll(t), 0)
	info, _ := h.Subscribe("bob", "alice", nil)
	go func() {
		time.Sleep(20 * time.Millisecond)
		h.Publish("alice", seg(t0, 4))
	}()
	start := time.Now()
	b, err := h.Next("bob", info.ID, "", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 1 {
		t.Fatalf("events = %+v", b.Events)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("poll did not wake on publish (took %v)", waited)
	}
}

func TestCursorResumeNoLossNoDuplication(t *testing.T) {
	h := newHub(allowAll(t), 0)
	info, _ := h.Subscribe("bob", "alice", nil)
	for i := 0; i < 3; i++ {
		h.Publish("alice", seg(t0.Add(time.Duration(i)*time.Second), 4))
	}
	b, err := h.Next("bob", info.ID, "", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 3 {
		t.Fatalf("want 3 events, got %+v", b.Events)
	}

	// The consumer acks only the first two (crash before processing the
	// third), then "reconnects": Subscribe with the same tuple resumes.
	if err := h.Ack("bob", info.ID, "2"); err != nil {
		t.Fatal(err)
	}
	again, err := h.Subscribe("bob", "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Resumed || again.ID != info.ID || again.Cursor != "2" {
		t.Fatalf("resume info = %+v", again)
	}
	b2, err := h.Next("bob", again.ID, again.Cursor, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Events) != 1 || b2.Events[0].Seq != 3 {
		t.Fatalf("resume replayed wrong events: %+v", b2.Events)
	}
}

func TestDistinctChannelTuplesAreDistinctSubscriptions(t *testing.T) {
	h := newHub(allowAll(t), 0)
	a, _ := h.Subscribe("bob", "alice", nil)
	b, _ := h.Subscribe("bob", "alice", []string{"ECG"})
	if a.ID == b.ID {
		t.Fatal("different channel tuples mapped to one subscription")
	}
	c, _ := h.Subscribe("bob", "alice", []string{"ecg"})
	if c.ID != b.ID {
		t.Fatal("channel key not case/order normalized")
	}
	if h.Subscribers() != 2 {
		t.Fatalf("subscribers = %d", h.Subscribers())
	}
}

func TestOverflowDropsOldestAndSurfacesGap(t *testing.T) {
	h := newHub(allowAll(t), 4)
	info, _ := h.Subscribe("bob", "alice", nil)
	for i := 0; i < 10; i++ {
		h.Publish("alice", seg(t0.Add(time.Duration(i)*time.Second), 2))
	}
	b, err := h.Next("bob", info.ID, "", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 5 {
		t.Fatalf("want gap + 4 data events, got %d: %+v", len(b.Events), b.Events)
	}
	gap := b.Events[0]
	if gap.Kind != KindGap || gap.Dropped != 6 || gap.Cursor != "6" {
		t.Fatalf("gap = %+v", gap)
	}
	for i, ev := range b.Events[1:] {
		if ev.Kind != KindData || ev.Seq != uint64(7+i) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	// Acking past the gap restores contiguity and clears lagging.
	if err := h.Ack("bob", info.ID, b.Cursor); err != nil {
		t.Fatal(err)
	}
	again, _ := h.Subscribe("bob", "alice", nil)
	if again.Lagging {
		t.Fatal("lagging flag not cleared after the gap was consumed")
	}
}

func TestRuleFlipRefiltersBufferedSegments(t *testing.T) {
	src := allowAll(t)
	h := newHub(src, 0)
	info, _ := h.Subscribe("bob", "alice", nil)

	h.Publish("alice", seg(t0, 4))
	b, _ := h.Next("bob", info.ID, "", time.Second)
	if len(b.Events) != 1 || b.Events[0].RuleVersion != 1 || b.Events[0].Releases[0].Segment == nil {
		t.Fatalf("pre-flip delivery = %+v", b.Events)
	}

	// Two more segments land in the buffer, then the contributor revokes.
	h.Publish("alice", seg(t0.Add(time.Second), 4))
	h.Publish("alice", seg(t0.Add(2*time.Second), 4))
	src.set(t, `[{"Action":"Deny"}]`)

	b2, err := h.Next("bob", info.ID, b.Cursor, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Events) != 0 {
		t.Fatalf("buffered segments leaked after revocation: %+v", b2.Events)
	}
	if b2.Cursor != "3" {
		t.Fatalf("cursor must advance past suppressed segments, got %s", b2.Cursor)
	}
}

func TestChannelSubscriptionProjects(t *testing.T) {
	h := newHub(allowAll(t), 0)
	info, _ := h.Subscribe("bob", "alice", []string{"ECG"})

	multi := seg(t0, 4)
	multi.Channels = []string{"ECG", "Respiration"}
	for i := range multi.Values {
		multi.Values[i] = []float64{1, 2}
	}
	h.Publish("alice", multi)

	// A segment with none of the requested channels is not even enqueued.
	other := seg(t0.Add(time.Second), 4)
	other.Channels = []string{"Microphone"}
	h.Publish("alice", other)

	b, _ := h.Next("bob", info.ID, "", time.Second)
	if len(b.Events) != 1 {
		t.Fatalf("events = %+v", b.Events)
	}
	rel := b.Events[0].Releases[0]
	if rel.Segment == nil || len(rel.Segment.Channels) != 1 || rel.Segment.Channels[0] != "ECG" {
		t.Fatalf("projection wrong: %+v", rel.Segment)
	}
	if b.Cursor != "1" {
		t.Fatalf("non-matching segment consumed a seq: cursor %s", b.Cursor)
	}
}

func TestUnsubscribeAndBye(t *testing.T) {
	h := newHub(allowAll(t), 0)
	info, _ := h.Subscribe("bob", "alice", nil)
	if err := h.Unsubscribe("eve", info.ID); err != ErrNotOwner {
		t.Fatalf("foreign unsubscribe: %v", err)
	}
	if err := h.Unsubscribe("bob", info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Next("bob", info.ID, "", 10*time.Millisecond); err == nil {
		t.Fatal("poll on a revoked subscription should fail")
	}
	if h.Subscribers() != 0 {
		t.Fatalf("subscribers = %d", h.Subscribers())
	}
}

func TestShutdownDeliversTerminalEvent(t *testing.T) {
	h := newHub(allowAll(t), 0)
	info, _ := h.Subscribe("bob", "alice", nil)
	done := make(chan Batch, 1)
	go func() {
		b, _ := h.Next("bob", info.ID, "", 10*time.Second)
		done <- b
	}()
	time.Sleep(20 * time.Millisecond)
	h.Shutdown()
	select {
	case b := <-done:
		if len(b.Events) != 1 || b.Events[0].Kind != KindBye {
			t.Fatalf("terminal batch = %+v", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked poll never woke on shutdown")
	}
}

func TestSnapshotRestoreResumesCursorWithGap(t *testing.T) {
	h := newHub(allowAll(t), 0)
	info, _ := h.Subscribe("bob", "alice", nil)
	for i := 0; i < 5; i++ {
		h.Publish("alice", seg(t0.Add(time.Duration(i)*time.Second), 2))
	}
	if err := h.Ack("bob", info.ID, "2"); err != nil {
		t.Fatal(err)
	}
	states := h.Snapshot()
	if len(states) != 1 || states[0].Acked != 2 || states[0].Next != 5 {
		t.Fatalf("snapshot = %+v", states)
	}

	// "Restart": a fresh hub restores the registration but not the buffer;
	// the three unacked segments surface as one gap.
	h2 := newHub(allowAll(t), 0)
	h2.Restore(states)
	again, err := h2.Subscribe("bob", "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Resumed || again.ID != info.ID || again.Cursor != "2" {
		t.Fatalf("restored info = %+v", again)
	}
	b, err := h2.Next("bob", again.ID, "", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 1 || b.Events[0].Kind != KindGap || b.Events[0].Dropped != 3 {
		t.Fatalf("restart gap = %+v", b.Events)
	}
}

func TestOnChangeFiresOnDurableMutations(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	src := allowAll(t)
	h := New(Options{Rules: src, OnChange: func() { mu.Lock(); calls++; mu.Unlock() }})
	info, _ := h.Subscribe("bob", "alice", nil)
	h.Publish("alice", seg(t0, 2))
	if err := h.Ack("bob", info.ID, "1"); err != nil {
		t.Fatal(err)
	}
	if err := h.Ack("bob", info.ID, "1"); err != nil { // no-op: cursor unchanged
		t.Fatal(err)
	}
	if err := h.Unsubscribe("bob", info.ID); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 { // subscribe + first ack + unsubscribe
		t.Fatalf("OnChange calls = %d, want 3", calls)
	}
}

// TestConcurrentSubscribersAgainstConcurrentIngest is the acceptance-
// criteria race test: ≥3 subscribers polling concurrently while two
// publishers ingest; every subscriber must account for every published
// segment exactly once (delivered or inside a gap), strictly in order.
func TestConcurrentSubscribersAgainstConcurrentIngest(t *testing.T) {
	const (
		subscribers = 4
		publishers  = 2
		perPub      = 150
	)
	h := newHub(allowAll(t), 32)
	total := uint64(publishers * perPub)

	infos := make([]SubInfo, subscribers)
	for i := range infos {
		info, err := h.Subscribe("bob"+strconv.Itoa(i), "alice", nil)
		if err != nil {
			t.Fatal(err)
		}
		infos[i] = info
	}

	var wg sync.WaitGroup
	errs := make(chan error, subscribers)
	for i := range infos {
		wg.Add(1)
		go func(who int, info SubInfo) {
			defer wg.Done()
			consumer := "bob" + strconv.Itoa(who)
			var accounted, lastSeq uint64
			cursor := info.Cursor
			deadline := time.Now().Add(20 * time.Second)
			for accounted < total && time.Now().Before(deadline) {
				b, err := h.Next(consumer, info.ID, cursor, 200*time.Millisecond)
				if err != nil {
					errs <- err
					return
				}
				for _, ev := range b.Events {
					if ev.Seq <= lastSeq {
						errs <- errOutOfOrder(who, ev.Seq, lastSeq)
						return
					}
					switch ev.Kind {
					case KindData:
						accounted += ev.Seq - lastSeq // includes suppressed gaps-in-sequence (none here)
					case KindGap:
						accounted += ev.Dropped
					}
					lastSeq = ev.Seq
				}
				cursor = b.Cursor
			}
			if accounted != total {
				errs <- errShortCount(who, accounted, total)
			}
		}(i, infos[i])
	}

	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				h.Publish("alice", seg(t0.Add(time.Duration(p*perPub+i)*time.Second), 2))
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type streamTestError string

func (e streamTestError) Error() string { return string(e) }

func errOutOfOrder(who int, seq, last uint64) error {
	return streamTestError("subscriber " + strconv.Itoa(who) + ": seq " +
		strconv.FormatUint(seq, 10) + " after " + strconv.FormatUint(last, 10))
}

func errShortCount(who int, got, want uint64) error {
	return streamTestError("subscriber " + strconv.Itoa(who) + ": accounted " +
		strconv.FormatUint(got, 10) + "/" + strconv.FormatUint(want, 10) + " segments")
}
