package httpapi

import (
	"sensorsafe/internal/auth"
	"sensorsafe/internal/federation"
)

// NewFederation wires a cohort query engine to a broker over HTTP: cohort
// resolution and Connect go through bc, and each store address is dialed
// as a StoreClient sharing bc's HTTP client and retry policy (nil fields
// fall back to the usual defaults). The returned engine caches store
// credentials and clients, so keep one per consumer session rather than
// one per query.
func NewFederation(bc *BrokerClient, key auth.APIKey, opts federation.Options) *federation.Engine {
	return NewFederationDialer(bc, key, opts, func(addr string) federation.Store {
		return &StoreClient{BaseURL: addr, HTTP: bc.HTTP, Retry: bc.Retry}
	})
}

// NewFederationDialer is NewFederation with a custom store dialer — for
// per-store transports (tests inject faults per address) or non-HTTP
// stores.
func NewFederationDialer(bc *BrokerClient, key auth.APIKey, opts federation.Options, dial func(addr string) federation.Store) *federation.Engine {
	return &federation.Engine{Broker: bc, Key: key, Options: opts, Dial: dial}
}

// Ensure the typed clients satisfy the federation interfaces.
var (
	_ federation.Broker = (*BrokerClient)(nil)
	_ federation.Store  = (*StoreClient)(nil)
)
