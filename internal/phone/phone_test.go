package phone

import (
	"testing"
	"time"

	"sensorsafe/internal/datastore"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
)

var (
	t0   = time.Date(2011, 2, 16, 8, 0, 0, 0, time.UTC) // Wednesday
	home = geo.Point{Lat: 34.0250, Lon: -118.4950}
)

func setup(t *testing.T) (*datastore.Service, *Phone) {
	t.Helper()
	svc, err := datastore.New(datastore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	alice, err := svc.RegisterContributor("alice")
	if err != nil {
		t.Fatal(err)
	}
	return svc, &Phone{Contributor: "alice", Key: alice.Key, Store: svc}
}

func scenario(phases ...sensors.Phase) *sensors.Scenario {
	return &sensors.Scenario{Start: t0, Origin: home, Seed: 3, Phases: phases}
}

func TestRunUploadsEverythingWhenNotRuleAware(t *testing.T) {
	svc, p := setup(t)
	rep, err := p.Run(scenario(sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxStill}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PacketsUploaded != rep.PacketsTotal || rep.PacketsSkipped != 0 || rep.PacketsDiscarded != 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.UploadFraction() != 1.0 {
		t.Errorf("upload fraction = %v", rep.UploadFraction())
	}
	if svc.SegmentCount() == 0 {
		t.Error("store should have records")
	}
	if rep.BytesUploaded == 0 || rep.RecordsWritten == 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRuleAwareNoRulesSkipsAll(t *testing.T) {
	svc, p := setup(t)
	p.RuleAware = true
	rep, err := p.Run(scenario(sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxStill}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PacketsSkipped != rep.PacketsTotal || rep.PacketsUploaded != 0 {
		t.Errorf("report = %+v", rep)
	}
	if svc.SegmentCount() != 0 {
		t.Error("nothing should reach the store")
	}
}

func setRules(t *testing.T, svc *datastore.Service, p *Phone, ruleJSON string) {
	t.Helper()
	if err := svc.SetRules(p.Key, []byte(ruleJSON)); err != nil {
		t.Fatal(err)
	}
}

func TestRuleAwareAllowAllUploadsAll(t *testing.T) {
	svc, p := setup(t)
	p.RuleAware = true
	setRules(t, svc, p, `[{"Action":"Allow"}]`)
	rep, err := p.Run(scenario(sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxStill}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PacketsUploaded != rep.PacketsTotal {
		t.Errorf("report = %+v", rep)
	}
}

func TestRuleAwareDiscardsDeniedContext(t *testing.T) {
	// Alice's §6 rule: stop collecting stress-related sensors while
	// driving. We model the storyline with a deny-everything-while-driving
	// rule: driving packets are collected (context must be inferred first)
	// and then discarded.
	svc, p := setup(t)
	p.RuleAware = true
	setRules(t, svc, p, `[
	  {"Action":"Allow"},
	  {"Context":["Drive"],"Action":"Deny"}
	]`)
	rep, err := p.Run(scenario(
		sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxStill},
		sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxDrive, Heading: 90},
		sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxStill},
	))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PacketsDiscarded == 0 {
		t.Fatalf("driving packets should be discarded: %+v", rep)
	}
	if rep.PacketsUploaded == 0 {
		t.Fatalf("still packets should be uploaded: %+v", rep)
	}
	// Roughly one third of the session is driving; allow slop for window
	// effects at phase boundaries.
	frac := rep.UploadFraction()
	if frac < 0.5 || frac > 0.85 {
		t.Errorf("upload fraction = %.2f, want ~2/3", frac)
	}
	if rep.PacketsSkipped != 0 {
		t.Errorf("context-conditioned rules require collection, not skipping: %+v", rep)
	}
	_ = svc
}

func TestRuleAwareSkipsDeniedLocation(t *testing.T) {
	// "deny accelerometer data at home" generalized: share only at UCLA.
	// Everything recorded at home can be skipped without collection
	// because the decision needs no context.
	svc, p := setup(t)
	p.RuleAware = true
	rect, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	if err := svc.DefinePlace(p.Key, "UCLA", geo.Region{Rect: rect}); err != nil {
		t.Fatal(err)
	}
	setRules(t, svc, p, `[{"LocationLabel":["UCLA"],"Action":"Allow"}]`)
	// The scenario stays at home the whole time.
	rep, err := p.Run(scenario(sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxStill}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PacketsSkipped != rep.PacketsTotal {
		t.Errorf("home packets should be skipped pre-collection: %+v", rep)
	}
	if rep.PacketsDiscarded != 0 || rep.PacketsUploaded != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRuleAwareTimeWindow(t *testing.T) {
	// Share only 8:00-8:02am; the scenario runs 8:00-8:04.
	svc, p := setup(t)
	p.RuleAware = true
	setRules(t, svc, p, `[
	  {"TimeRange":{"Start":"2011-02-16T08:00:00Z","End":"2011-02-16T08:02:00Z"},"Action":"Allow"}
	]`)
	rep, err := p.Run(scenario(sensors.Phase{Duration: 4 * time.Minute, Activity: rules.CtxStill}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PacketsSkipped == 0 || rep.PacketsUploaded == 0 {
		t.Fatalf("expected a mix of uploaded and skipped: %+v", rep)
	}
	frac := rep.UploadFraction()
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("upload fraction = %.2f, want ~1/2", frac)
	}
	_ = svc
}

func TestUploadedDataIsAnnotatedAndQueryable(t *testing.T) {
	svc, p := setup(t)
	setRules(t, svc, p, `[{"Action":"Allow"}]`)
	if _, err := p.Run(scenario(
		sensors.Phase{Duration: 2 * time.Minute, Activity: rules.CtxDrive, Heading: 45},
	)); err != nil {
		t.Fatal(err)
	}
	bob, err := svc.RegisterConsumer("bob")
	if err != nil {
		t.Fatal(err)
	}
	rels, err := svc.Query(bob.Key, &query.Query{Contexts: []string{"Drive"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) == 0 {
		t.Fatal("driving spans should be queryable by context")
	}
}

func TestRunWithoutStore(t *testing.T) {
	p := &Phone{Contributor: "alice"}
	if _, err := p.Run(scenario(sensors.Phase{Duration: time.Minute, Activity: rules.CtxStill})); err == nil {
		t.Error("missing store should error")
	}
}

func TestRunInvalidScenario(t *testing.T) {
	_, p := setup(t)
	if _, err := p.Run(&sensors.Scenario{}); err == nil {
		t.Error("invalid scenario should error")
	}
}

func TestCollectionDecisionHints(t *testing.T) {
	// Direct engine-level checks of the §5.3 hint logic.
	mk := func(json string) *rules.Engine {
		rs, err := rules.UnmarshalRuleSet([]byte(json))
		if err != nil {
			t.Fatal(err)
		}
		e, err := rules.NewEngine(rs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	at := t0
	loc := home

	if got := mk(`[{"Action":"Allow"}]`).CollectionDecision(at, loc); got != rules.CollectShare {
		t.Errorf("allow-all hint = %v", got)
	}
	if got := mk(`[{"Context":["Drive"],"Action":"Allow"}]`).CollectionDecision(at, loc); got != rules.CollectNeedsContext {
		t.Errorf("context-allow hint = %v", got)
	}
	e := mk(`[{"TimeRange":{"Start":"2030-01-01T00:00:00Z"},"Action":"Allow"}]`)
	if got := e.CollectionDecision(at, loc); got != rules.CollectSkip {
		t.Errorf("future-only hint = %v", got)
	}
	// Consumer-specific allow still means somebody gets data.
	if got := mk(`[{"Consumer":["Bob"],"Action":"Allow"}]`).CollectionDecision(at, loc); got != rules.CollectShare {
		t.Errorf("consumer-scoped hint = %v", got)
	}
	// Group-scoped allow likewise.
	if got := mk(`[{"Group":["Study"],"Action":"Allow"}]`).CollectionDecision(at, loc); got != rules.CollectShare {
		t.Errorf("group-scoped hint = %v", got)
	}
	// SharedWithAnyone honours context-conditioned denies.
	e = mk(`[{"Action":"Allow"},{"Context":["Drive"],"Action":"Deny"}]`)
	if e.SharedWithAnyone(at, loc, []string{rules.CtxDrive}) {
		t.Error("driving should share nothing")
	}
	if !e.SharedWithAnyone(at, loc, []string{rules.CtxWalk}) {
		t.Error("walking should share")
	}
	if rules.CollectSkip.String() != "Skip" || rules.CollectNeedsContext.String() != "NeedsContext" ||
		rules.CollectShare.String() != "Share" {
		t.Error("hint strings wrong")
	}
}
