package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SARIF 2.1.0 output and baseline suppression for CI integration: the
// GitHub code-scanning UI ingests the SARIF directly, and a baseline
// file (the JSON array emitted by -json) lets a repo adopt a new
// analyzer without first fixing every historical finding.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF prints findings as a SARIF 2.1.0 log. The analyzer suite
// provides the rule metadata; every diagnostic becomes one result at
// warning level.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer) error {
	rules := make([]sarifRule, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
	}
	results := make([]sarifResult, len(diags))
	for i, d := range diags {
		line := d.Pos.Line
		if line < 1 {
			line = 1 // SARIF regions are 1-based
		}
		results[i] = sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
				Region:           sarifRegion{StartLine: line, StartColumn: d.Pos.Column},
			}}},
		}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "sslint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// Baseline is a set of accepted findings, keyed independently of line
// numbers so unrelated edits above a finding do not un-suppress it.
type Baseline struct {
	keys map[string]int // key → accepted occurrence count per key
}

func baselineKey(file, analyzer, message string) string {
	return file + "\x00" + analyzer + "\x00" + message
}

// LoadBaseline reads a baseline file: the JSON diagnostics array that
// `sslint -json` emits. Refreshing the baseline is re-running that
// command.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var entries []jsonDiagnostic
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: baseline %s is not a JSON findings array: %w", path, err)
	}
	b := &Baseline{keys: make(map[string]int)}
	for _, e := range entries {
		b.keys[baselineKey(e.File, e.Analyzer, e.Message)]++
	}
	return b, nil
}

// Filter drops diagnostics present in the baseline. Each baseline entry
// absorbs one occurrence, so a file that gains a second identical
// violation still fails.
func (b *Baseline) Filter(diags []Diagnostic) []Diagnostic {
	if b == nil || len(b.keys) == 0 {
		return diags
	}
	remaining := make(map[string]int, len(b.keys))
	for k, n := range b.keys {
		remaining[k] = n
	}
	out := diags[:0]
	for _, d := range diags {
		k := baselineKey(d.Pos.Filename, d.Analyzer, d.Message)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}
