package rules

import (
	"time"

	"sensorsafe/internal/geo"
)

// This file supports privacy-rule-aware data collection (paper §5.3): the
// phone downloads the owner's rules and skips collecting data that no rule
// would ever share. Sharing is per-consumer, so the phone probes the rule
// set against every consumer identity the rules mention (named consumers,
// group members, and the anonymous "any consumer" case) and collects only
// if somebody could receive something.

// probeIdentities enumerates the consumer identities that could possibly be
// granted data by this rule set: each named consumer, one member of each
// named group, and an unnamed consumer (for rules without consumer
// conditions).
func (e *Engine) probeIdentities() []Request {
	seenC := make(map[string]bool)
	seenG := make(map[string]bool)
	out := []Request{{Consumer: "~anyone"}}
	for _, r := range e.rules {
		if r.Action.Kind == ActionDeny {
			continue // denies grant nothing; their scope is applied in Decide
		}
		for _, c := range r.Consumers {
			if !seenC[c] {
				seenC[c] = true
				out = append(out, Request{Consumer: c})
			}
		}
		for _, g := range r.Groups {
			if !seenG[g] {
				seenG[g] = true
				out = append(out, Request{Consumer: "~member", ConsumerGroups: []string{g}})
			}
		}
	}
	return out
}

// SharedWithAnyone reports whether any consumer identity would receive any
// information for data recorded at the given instant, location, and active
// contexts.
func (e *Engine) SharedWithAnyone(at time.Time, loc geo.Point, activeContexts []string) bool {
	for _, id := range e.probeIdentities() {
		req := id
		req.At = at
		req.Location = loc
		req.ActiveContexts = activeContexts
		if e.Decide(&req).SharesAnything() {
			return true
		}
	}
	return false
}

// HasContextConditionedGrant reports whether some allow/abstract rule with
// a context condition matches the instant and location — meaning the phone
// must collect temporarily and infer context before it can decide whether
// the data is shareable (§5.3's third condition).
func (e *Engine) HasContextConditionedGrant(at time.Time, loc geo.Point) bool {
	for _, r := range e.rules {
		if r.Action.Kind == ActionDeny || len(r.Contexts) == 0 {
			continue
		}
		if e.locationMatches(r, loc) && timeMatches(r, at) {
			return true
		}
	}
	return false
}

// CollectionHint is the phone's pre-collection decision for one instant.
type CollectionHint int

// Collection hints, from cheapest to most involved.
const (
	// CollectSkip: no rule could share data here and now — leave sensors
	// off entirely.
	CollectSkip CollectionHint = iota
	// CollectNeedsContext: sharing depends on a context condition —
	// collect temporarily, infer context, then keep or discard.
	CollectNeedsContext
	// CollectShare: data recorded here and now is shareable regardless of
	// context (though context-conditioned denies may still trim it).
	CollectShare
)

func (h CollectionHint) String() string {
	switch h {
	case CollectSkip:
		return "Skip"
	case CollectNeedsContext:
		return "NeedsContext"
	case CollectShare:
		return "Share"
	default:
		return "CollectionHint(?)"
	}
}

// CollectionDecision computes the pre-collection hint for one instant and
// location.
func (e *Engine) CollectionDecision(at time.Time, loc geo.Point) CollectionHint {
	if e.SharedWithAnyone(at, loc, nil) {
		return CollectShare
	}
	if e.HasContextConditionedGrant(at, loc) {
		return CollectNeedsContext
	}
	return CollectSkip
}
