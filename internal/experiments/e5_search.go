package experiments

import (
	"fmt"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
)

// E5Config parameterizes the contributor-search experiment.
type E5Config struct {
	// ContributorCounts sweeps directory size.
	ContributorCounts []int
	// RulesPerContributor sweeps rule-set size.
	RulesPerContributor []int
	// Searches per configuration.
	Searches int
}

// DefaultE5 sweeps up to 1000 contributors.
func DefaultE5() E5Config {
	return E5Config{
		ContributorCounts:   []int{10, 100, 1000},
		RulesPerContributor: []int{5, 20},
		Searches:            20,
	}
}

// E5Broker builds a broker with n contributors of k rules each; every
// third contributor shares ECG+Respiration at "work" (the paper's search
// example), the rest restrict stress there. Exported for benchmarks.
func E5Broker(n, k int) (*broker.Service, auth.APIKey, error) {
	b := broker.New()
	rect, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	places := []geo.Region{{Label: "work", Rect: rect}}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%05d", i)
		if err := b.RegisterContributor(name, "store-"+name); err != nil {
			return nil, "", err
		}
		rs := e4Rules(k - 1)
		if i%3 == 0 {
			rs = append(rs, &rules.Rule{ID: "share-all", Action: rules.Allow()})
		} else {
			rs = append(rs,
				&rules.Rule{ID: "share-all", Action: rules.Allow()},
				&rules.Rule{ID: "hide-stress-at-work",
					LocationLabels: []string{"work"},
					Action: rules.Abstract(rules.AbstractionSpec{
						Contexts: map[rules.Category]rules.Level{rules.CategoryStress: rules.LevelNotShared},
					})})
		}
		data, err := rules.MarshalRuleSet(rs)
		if err != nil {
			return nil, "", err
		}
		if err := b.SyncRules(name, 1, data, places); err != nil {
			return nil, "", err
		}
	}
	bob, err := b.RegisterConsumer("bob")
	if err != nil {
		return nil, "", err
	}
	return b, bob.Key, nil
}

// E5Query is the paper's §5.2 example search: who shares ECG+Respiration
// raw at "work" on weekday business hours? Exported for benchmarks.
func E5Query() *broker.SearchQuery {
	rep, _ := timeutil.ParseRepeated([]string{"Mon", "Tue", "Wed", "Thu", "Fri"}, []string{"9:00am", "6:00pm"})
	return &broker.SearchQuery{
		Sensors:       []string{"ECG", "Respiration"},
		LocationLabel: "work",
		RepeatTime:    rep,
		Reference:     time.Date(2011, 2, 16, 8, 0, 0, 0, time.UTC),
	}
}

// RunE5 measures search latency across directory and rule-set sizes.
func RunE5(cfg E5Config) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Caption: fmt.Sprintf("broker contributor search (mean of %d searches)", cfg.Searches),
		Headers: []string{"contributors", "rules each", "matches", "search latency", "per contributor"},
		Notes: []string{
			"paper §5.2: the broker searches locally replicated rules; latency should grow linearly with directory size",
		},
	}
	q := E5Query()
	for _, n := range cfg.ContributorCounts {
		for _, k := range cfg.RulesPerContributor {
			b, key, err := E5Broker(n, k)
			if err != nil {
				return nil, err
			}
			var matches []string
			begin := time.Now()
			for i := 0; i < cfg.Searches; i++ {
				matches, err = b.Search(key, q)
				if err != nil {
					return nil, err
				}
			}
			lat := time.Since(begin) / time.Duration(cfg.Searches)
			per := time.Duration(0)
			if n > 0 {
				per = lat / time.Duration(n)
			}
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
				fmt.Sprintf("%d", len(matches)),
				lat.Round(time.Microsecond).String(), per.Round(time.Nanosecond).String())
		}
	}
	return t, nil
}
