package storage

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/wavesegment"
)

var (
	t0   = time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)
	ucla = geo.Point{Lat: 34.0689, Lon: -118.4452}
)

func seg(contributor string, start time.Time, n int, channels ...string) *wavesegment.Segment {
	if len(channels) == 0 {
		channels = []string{wavesegment.ChannelECG}
	}
	s := &wavesegment.Segment{
		Contributor: contributor,
		Start:       start,
		Interval:    100 * time.Millisecond,
		Location:    ucla,
		Channels:    channels,
	}
	for i := 0; i < n; i++ {
		row := make([]float64, len(channels))
		for j := range row {
			row[j] = float64(i)
		}
		s.Values = append(s.Values, row)
	}
	return s
}

func memStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := memStore(t)
	id, err := s.Put(seg("alice", t0, 10))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Contributor != "alice" || got.NumSamples() != 10 {
		t.Errorf("got %v", got)
	}
	if s.Count() != 1 {
		t.Errorf("Count = %d", s.Count())
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete: %v", err)
	}
	if err := s.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if s.Count() != 0 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestPutValidatesAndClones(t *testing.T) {
	s := memStore(t)
	if _, err := s.Put(&wavesegment.Segment{}); err == nil {
		t.Error("invalid segment should be rejected")
	}
	if _, err := s.Put(nil); err == nil {
		t.Error("nil segment should be rejected")
	}
	orig := seg("alice", t0, 5)
	id, err := s.Put(orig)
	if err != nil {
		t.Fatal(err)
	}
	orig.Values[0][0] = 999 // mutate after Put
	got, _ := s.Get(id)
	if got.Values[0][0] == 999 {
		t.Error("store must clone on Put")
	}
	got.Values[1][0] = 888 // mutate returned copy
	again, _ := s.Get(id)
	if again.Values[1][0] == 888 {
		t.Error("store must clone on Get")
	}
}

func TestScanTimeRange(t *testing.T) {
	s := memStore(t)
	for i := 0; i < 10; i++ {
		// 10 segments of 1 s each at t0, t0+1m, t0+2m, ...
		if _, err := s.Put(seg("alice", t0.Add(time.Duration(i)*time.Minute), 10)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Scan(Query{From: t0.Add(2 * time.Minute), To: t0.Add(5 * time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("scan returned %d segments, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Segment.StartTime().Before(got[i-1].Segment.StartTime()) {
			t.Error("results not ordered by start")
		}
	}
	// Half-open semantics: a segment starting exactly at To is excluded; one
	// ending exactly at From is excluded.
	got, _ = s.Scan(Query{From: t0.Add(time.Second), To: t0.Add(time.Minute)})
	if len(got) != 0 {
		t.Errorf("boundary scan = %d segments, want 0", len(got))
	}
	// Overlap: window inside a segment matches it.
	got, _ = s.Scan(Query{From: t0.Add(200 * time.Millisecond), To: t0.Add(300 * time.Millisecond)})
	if len(got) != 1 {
		t.Errorf("interior scan = %d segments, want 1", len(got))
	}
}

func TestScanFilters(t *testing.T) {
	s := memStore(t)
	mustPut := func(x *wavesegment.Segment) {
		t.Helper()
		if _, err := s.Put(x); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(seg("alice", t0, 10, wavesegment.ChannelECG))
	mustPut(seg("bob", t0.Add(time.Minute), 10, wavesegment.ChannelAccelX))
	far := seg("alice", t0.Add(2*time.Minute), 10, wavesegment.ChannelECG)
	far.Location = geo.Point{Lat: 48.85, Lon: 2.35}
	mustPut(far)

	got, _ := s.Scan(Query{Contributor: "alice"})
	if len(got) != 2 {
		t.Errorf("contributor filter: %d, want 2", len(got))
	}
	got, _ = s.Scan(Query{Channels: []string{wavesegment.ChannelAccelX, wavesegment.ChannelAccelY}})
	if len(got) != 1 || got[0].Segment.Contributor != "bob" {
		t.Errorf("channel filter: %v", got)
	}
	rect, _ := geo.NewRect(geo.Point{Lat: 34, Lon: -119}, geo.Point{Lat: 35, Lon: -118})
	got, _ = s.Scan(Query{Region: rect})
	if len(got) != 2 {
		t.Errorf("region filter: %d, want 2", len(got))
	}
	got, _ = s.Scan(Query{Limit: 1})
	if len(got) != 1 {
		t.Errorf("limit: %d, want 1", len(got))
	}
	got, _ = s.Scan(Query{})
	if len(got) != 3 {
		t.Errorf("match-all: %d, want 3", len(got))
	}
}

func TestScanRefsSharesRecords(t *testing.T) {
	s := memStore(t)
	if _, err := s.Put(seg("alice", t0, 5)); err != nil {
		t.Fatal(err)
	}
	a, err := s.ScanRefs(Query{})
	if err != nil || len(a) != 1 {
		t.Fatalf("ScanRefs: %v, %v", a, err)
	}
	b, _ := s.ScanRefs(Query{})
	if a[0].Segment != b[0].Segment {
		t.Error("ScanRefs should return the same record pointer")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := s.Put(seg("alice", t0, 20))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Put(seg("bob", t0.Add(time.Minute), 30))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 1 {
		t.Fatalf("after reopen Count = %d, want 1", s2.Count())
	}
	got, err := s2.Get(id2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Contributor != "bob" || got.NumSamples() != 30 {
		t.Errorf("recovered segment = %v", got)
	}
	// IDs continue from where they left off.
	id3, err := s2.Put(seg("carol", t0.Add(2*time.Minute), 5))
	if err != nil {
		t.Fatal(err)
	}
	if id3 <= id2 {
		t.Errorf("id3 = %d should exceed id2 = %d", id3, id2)
	}
}

func TestReplayToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Put(seg("alice", t0.Add(time.Duration(i)*time.Minute), 10)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-record to simulate a crash during the last append.
	if err := os.WriteFile(path, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 4 {
		t.Errorf("after truncated replay Count = %d, want 4", s2.Count())
	}
	// Store still writable after recovery.
	if _, err := s2.Put(seg("alice", t0.Add(time.Hour), 10)); err != nil {
		t.Fatal(err)
	}
}

func TestReplayToleratesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	for i := 0; i < 3; i++ {
		if _, err := s.Put(seg("alice", t0.Add(time.Duration(i)*time.Minute), 10)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := filepath.Join(dir, walName)
	data, _ := os.ReadFile(path)
	data[len(data)-5] ^= 0xFF // corrupt inside last record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 2 {
		t.Errorf("after corrupt replay Count = %d, want 2", s2.Count())
	}
}

func TestCompactShrinksLog(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	var ids []ID
	for i := 0; i < 20; i++ {
		id, err := s.Put(seg("alice", t0.Add(time.Duration(i)*time.Minute), 50))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:15] {
		if err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(filepath.Join(dir, walName))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(filepath.Join(dir, walName))
	if after.Size() >= before.Size() {
		t.Errorf("compact did not shrink log: %d -> %d", before.Size(), after.Size())
	}
	if s.Count() != 5 {
		t.Errorf("Count after compact = %d", s.Count())
	}
	// Data survives compaction + reopen.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 5 {
		t.Errorf("Count after reopen = %d", s2.Count())
	}
	// Writes continue to work post-compact reopen.
	if _, err := s2.Put(seg("alice", t0.Add(time.Hour), 5)); err != nil {
		t.Fatal(err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, _ := Open("")
	s.Close()
	if _, err := s.Put(seg("a", t0, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Put on closed: %v", err)
	}
	if _, err := s.Get(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Get on closed: %v", err)
	}
	if err := s.Delete(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete on closed: %v", err)
	}
	if _, err := s.Scan(Query{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Scan on closed: %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact on closed: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := memStore(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id, err := s.Put(seg("alice", t0.Add(time.Duration(w*1000+i)*time.Second), 10))
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(id); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Scan(Query{Limit: 5}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != 400 {
		t.Errorf("Count = %d, want 400", s.Count())
	}
}

func TestTimeBoundsAndContributors(t *testing.T) {
	s := memStore(t)
	if _, _, ok := s.TimeBounds(); ok {
		t.Error("empty store should have no bounds")
	}
	if _, err := s.Put(seg("bob", t0.Add(time.Minute), 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(seg("alice", t0, 10)); err != nil {
		t.Fatal(err)
	}
	min, max, ok := s.TimeBounds()
	if !ok || !min.Equal(t0) || !max.Equal(t0.Add(time.Minute+time.Second)) {
		t.Errorf("bounds = %v..%v, %v", min, max, ok)
	}
	cs := s.Contributors()
	if len(cs) != 2 || cs[0] != "alice" || cs[1] != "bob" {
		t.Errorf("Contributors = %v", cs)
	}
}

func TestLatestBefore(t *testing.T) {
	s := memStore(t)
	if _, ok := s.LatestBefore("alice", t0.Add(time.Hour)); ok {
		t.Error("empty store has no latest record")
	}
	idA, _ := s.Put(seg("alice", t0, 10))
	idB, _ := s.Put(seg("alice", t0.Add(time.Minute), 10, wavesegment.ChannelAccelX))
	_, _ = s.Put(seg("bob", t0.Add(2*time.Minute), 10))

	got, ok := s.LatestBefore("alice", t0.Add(time.Hour))
	if !ok || got.ID != idB {
		t.Errorf("LatestBefore = %+v, %v; want id %d", got, ok, idB)
	}
	// Strictly before: a record starting exactly at t is excluded.
	got, ok = s.LatestBefore("alice", t0.Add(time.Minute))
	if !ok || got.ID != idA {
		t.Errorf("boundary LatestBefore = %+v, %v; want id %d", got, ok, idA)
	}
	if _, ok := s.LatestBefore("alice", t0); ok {
		t.Error("nothing strictly before the first record")
	}
	// Any-contributor form.
	got, ok = s.LatestBefore("", t0.Add(time.Hour))
	if !ok || got.Segment.Contributor != "bob" {
		t.Errorf("any-contributor = %+v, %v", got, ok)
	}
	// Predicate form: latest alice record carrying ECG.
	got, ok = s.LatestBeforeFunc("alice", t0.Add(time.Hour), func(sg *wavesegment.Segment) bool {
		return sg.HasChannel(wavesegment.ChannelECG)
	})
	if !ok || got.ID != idA {
		t.Errorf("predicate LatestBefore = %+v, %v; want id %d", got, ok, idA)
	}
	if _, ok := s.LatestBeforeFunc("alice", t0.Add(time.Hour), func(*wavesegment.Segment) bool { return false }); ok {
		t.Error("unsatisfiable predicate should miss")
	}
}

func TestScanRefsFiltersAndLimit(t *testing.T) {
	s := memStore(t)
	_, _ = s.Put(seg("alice", t0, 10))
	_, _ = s.Put(seg("bob", t0.Add(time.Minute), 10))
	_, _ = s.Put(seg("alice", t0.Add(2*time.Minute), 10))

	got, err := s.ScanRefs(Query{Contributor: "alice"})
	if err != nil || len(got) != 2 {
		t.Fatalf("contributor filter = %v, %v", got, err)
	}
	got, _ = s.ScanRefs(Query{Limit: 1})
	if len(got) != 1 {
		t.Errorf("limit = %d results", len(got))
	}
	got, _ = s.ScanRefs(Query{To: t0.Add(90 * time.Second)})
	if len(got) != 2 {
		t.Errorf("to-bounded = %d results", len(got))
	}
	s.Close()
	if _, err := s.ScanRefs(Query{}); !errors.Is(err, ErrClosed) {
		t.Errorf("closed ScanRefs: %v", err)
	}
}

func TestCompactInMemoryNoop(t *testing.T) {
	s := memStore(t)
	if _, err := s.Put(seg("alice", t0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Errorf("in-memory compact: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("in-memory sync: %v", err)
	}
	if s.Count() != 1 {
		t.Error("compact must not drop records")
	}
}

func TestSyncClosed(t *testing.T) {
	s, _ := Open("")
	s.Close()
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("closed sync: %v", err)
	}
}

func TestScanOrderWithEqualStarts(t *testing.T) {
	s := memStore(t)
	a, _ := s.Put(seg("alice", t0, 10))
	b, _ := s.Put(seg("alice", t0, 20))
	got, _ := s.Scan(Query{})
	if len(got) != 2 || got[0].ID != a || got[1].ID != b {
		t.Errorf("equal-start order: %v", got)
	}
}
