package ruleindex

import (
	"math/rand"
	"testing"

	"sensorsafe/internal/rules"
)

// benchFixture builds a generated rule set of the given size plus a pool
// of requests to sweep, shared by the linear and indexed benchmarks so
// the two measure identical work.
func benchFixture(b *testing.B, nRules int) (*rules.Engine, *Index, []*rules.Request) {
	b.Helper()
	gaz := testGazetteer(b)
	rng := rand.New(rand.NewSource(int64(nRules)))
	rs := make([]*rules.Rule, nRules)
	for i := range rs {
		rs[i] = genRule(b, rng, i)
	}
	eng, err := rules.NewEngine(rs, gaz)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := New(rs, gaz, Options{})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]*rules.Request, 256)
	for i := range reqs {
		reqs[i] = genRequest(rng)
	}
	return eng, ix, reqs
}

// BenchmarkLinearDecide is the E14 baseline: the engine's linear scan.
func BenchmarkLinearDecide(b *testing.B) {
	eng, _, reqs := benchFixture(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Decide(reqs[i%len(reqs)])
	}
}

// BenchmarkIndexDecide measures the compiled index with a warm decision
// cache — the steady state of a store serving repeat consumers.
func BenchmarkIndexDecide(b *testing.B) {
	_, ix, reqs := benchFixture(b, 1000)
	for _, req := range reqs {
		ix.Decide(req)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Decide(reqs[i%len(reqs)])
	}
}

// BenchmarkIndexDecideCold measures the index with memoization disabled:
// the pure partition-intersect-combine path every novel request pays.
func BenchmarkIndexDecideCold(b *testing.B) {
	gaz := testGazetteer(b)
	rng := rand.New(rand.NewSource(1000))
	rs := make([]*rules.Rule, 1000)
	for i := range rs {
		rs[i] = genRule(b, rng, i)
	}
	ix, err := New(rs, gaz, Options{CacheEntries: -1})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]*rules.Request, 256)
	for i := range reqs {
		reqs[i] = genRequest(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Decide(reqs[i%len(reqs)])
	}
}

// BenchmarkCompile measures rule-set → index compilation, which runs on
// every rule mutation.
func BenchmarkCompile(b *testing.B) {
	gaz := testGazetteer(b)
	rng := rand.New(rand.NewSource(7))
	rs := make([]*rules.Rule, 1000)
	for i := range rs {
		rs[i] = genRule(b, rng, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(rs, gaz, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
