package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/stream"
	"sensorsafe/internal/wavesegment"
)

// E9Config parameterizes the live-sharing fan-out experiment: one
// contributor uploading while N subscribers consume the stream, measuring
// per-delivery latency (upload call → event received, rules applied) and
// the drop rate under a deliberately tiny ring buffer.
type E9Config struct {
	// SubscriberCounts sweeps the fan-out.
	SubscriberCounts []int
	// Segments uploaded per fan-out level.
	Segments int
	// SamplesPerSegment sizes each upload.
	SamplesPerSegment int
	// BurstBuffer is the per-subscriber ring size for the overflow row
	// (subscribers poll only after the whole burst has been ingested, so
	// everything beyond the ring must be dropped and surfaced as a gap).
	BurstBuffer int
}

// DefaultE9 sweeps 1/10/100 subscribers over 50 uploads.
func DefaultE9() E9Config {
	return E9Config{
		SubscriberCounts:  []int{1, 10, 100},
		Segments:          50,
		SamplesPerSegment: 64,
		BurstBuffer:       8,
	}
}

// RunE9 measures stream fan-out: delivery latency percentiles while N
// concurrent subscribers poll against live ingest, plus a burst scenario
// demonstrating the bounded-buffer drop-oldest policy.
func RunE9(cfg E9Config) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Caption: "live-sharing fan-out: 1 contributor, N subscribers",
		Headers: []string{"subscribers", "segments", "delivered", "dropped", "drop rate", "p50 latency", "p95 latency"},
		Notes: []string{
			"latency is upload call -> enforced event received by the subscriber (in-process, rules applied per delivery)",
			fmt.Sprintf("the burst rows ingest all %d segments before the first poll with a %d-segment ring: drop-oldest keeps the newest data and the gap event reports the loss", cfg.Segments, cfg.BurstBuffer),
		},
	}
	for _, n := range cfg.SubscriberCounts {
		row, err := e9FanOut(cfg, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	for _, n := range cfg.SubscriberCounts {
		row, err := e9Burst(cfg, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func e9Setup(n int, buffer int) (*datastore.Service, auth.User, []auth.User, []stream.SubInfo, error) {
	svc, err := datastore.New(datastore.Options{StreamBufferSegments: buffer})
	if err != nil {
		return nil, auth.User{}, nil, nil, err
	}
	alice, err := svc.RegisterContributor("alice")
	if err != nil {
		return nil, auth.User{}, nil, nil, err
	}
	if err := svc.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		return nil, auth.User{}, nil, nil, err
	}
	consumers := make([]auth.User, n)
	infos := make([]stream.SubInfo, n)
	for i := range consumers {
		u, err := svc.RegisterConsumer(fmt.Sprintf("consumer-%d", i))
		if err != nil {
			return nil, auth.User{}, nil, nil, err
		}
		consumers[i] = u
		info, err := svc.Subscribe(u.Key, "alice", nil)
		if err != nil {
			return nil, auth.User{}, nil, nil, err
		}
		infos[i] = info
	}
	return svc, alice, consumers, infos, nil
}

func e9Segment(start time.Time, samples int) *wavesegment.Segment {
	s := &wavesegment.Segment{
		Contributor: "alice",
		Start:       start,
		Interval:    10 * time.Millisecond,
		Location:    geo.Point{Lat: 34.0689, Lon: -118.4452},
		Channels:    []string{wavesegment.ChannelECG, wavesegment.ChannelRespiration},
	}
	for i := 0; i < samples; i++ {
		s.Values = append(s.Values, []float64{float64(i), float64(i)})
	}
	return s
}

// e9FanOut runs live ingest against N concurrently polling subscribers and
// reports delivery latency percentiles.
func e9FanOut(cfg E9Config, n int) ([]string, error) {
	svc, alice, consumers, infos, err := e9Setup(n, 0)
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	start := time.Date(2026, 8, 5, 8, 0, 0, 0, time.UTC)
	uploadTimes := make([]time.Time, cfg.Segments+1) // indexed by seq (1-based)
	var utMu sync.Mutex

	var wg sync.WaitGroup
	latCh := make(chan time.Duration, n*cfg.Segments)
	dropCh := make(chan uint64, n)
	errCh := make(chan error, n+1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(u auth.User, info stream.SubInfo) {
			defer wg.Done()
			var accounted, dropped uint64
			cursor := info.Cursor
			deadline := time.Now().Add(60 * time.Second)
			for accounted < uint64(cfg.Segments) && time.Now().Before(deadline) {
				b, err := svc.StreamNext(u.Key, info.ID, cursor, 500*time.Millisecond)
				if err != nil {
					errCh <- err
					return
				}
				now := time.Now()
				for _, ev := range b.Events {
					switch ev.Kind {
					case stream.KindData:
						accounted++
						utMu.Lock()
						ut := uploadTimes[ev.Seq]
						utMu.Unlock()
						if !ut.IsZero() {
							latCh <- now.Sub(ut)
						}
					case stream.KindGap:
						accounted += ev.Dropped
						dropped += ev.Dropped
					}
				}
				cursor = b.Cursor
			}
			dropCh <- dropped
		}(consumers[i], infos[i])
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		at := start
		for i := 1; i <= cfg.Segments; i++ {
			seg := e9Segment(at, cfg.SamplesPerSegment)
			utMu.Lock()
			uploadTimes[i] = time.Now()
			utMu.Unlock()
			if _, err := svc.Upload(alice.Key, []*wavesegment.Segment{seg}); err != nil {
				errCh <- err
				return
			}
			at = seg.EndTime().Add(time.Hour) // non-contiguous: one record each
		}
	}()
	wg.Wait()
	close(latCh)
	close(dropCh)
	close(errCh)
	for err := range errCh {
		return nil, err
	}

	var lats []time.Duration
	for d := range latCh {
		lats = append(lats, d)
	}
	var dropped uint64
	for d := range dropCh {
		dropped += d
	}
	total := uint64(n * cfg.Segments)
	return []string{
		fmt.Sprintf("%d", n),
		fmt.Sprintf("%d", cfg.Segments),
		fmt.Sprintf("%d", uint64(len(lats))),
		fmt.Sprintf("%d", dropped),
		fmt.Sprintf("%.1f%%", 100*float64(dropped)/float64(total)),
		e9Percentile(lats, 0.50).String(),
		e9Percentile(lats, 0.95).String(),
	}, nil
}

// e9Burst ingests the whole run before any subscriber polls, with a ring
// far smaller than the burst: the overflow policy must keep ingest
// non-blocking, drop the oldest segments, and report the loss as a gap.
func e9Burst(cfg E9Config, n int) ([]string, error) {
	svc, alice, consumers, infos, err := e9Setup(n, cfg.BurstBuffer)
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	at := time.Date(2026, 8, 5, 8, 0, 0, 0, time.UTC)
	for i := 0; i < cfg.Segments; i++ {
		seg := e9Segment(at, cfg.SamplesPerSegment)
		if _, err := svc.Upload(alice.Key, []*wavesegment.Segment{seg}); err != nil {
			return nil, err
		}
		at = seg.EndTime().Add(time.Hour)
	}

	var delivered, dropped uint64
	for i := 0; i < n; i++ {
		var accounted uint64
		cursor := infos[i].Cursor
		for accounted < uint64(cfg.Segments) {
			b, err := svc.StreamNext(consumers[i].Key, infos[i].ID, cursor, 0)
			if err != nil {
				return nil, err
			}
			if len(b.Events) == 0 {
				break
			}
			for _, ev := range b.Events {
				switch ev.Kind {
				case stream.KindData:
					accounted++
					delivered++
				case stream.KindGap:
					accounted += ev.Dropped
					dropped += ev.Dropped
				}
			}
			cursor = b.Cursor
		}
	}
	total := uint64(n * cfg.Segments)
	return []string{
		fmt.Sprintf("%d (burst)", n),
		fmt.Sprintf("%d", cfg.Segments),
		fmt.Sprintf("%d", delivered),
		fmt.Sprintf("%d", dropped),
		fmt.Sprintf("%.1f%%", 100*float64(dropped)/float64(total)),
		"-", "-",
	}, nil
}

func e9Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	i := int(p * float64(len(ds)-1))
	return ds[i].Round(time.Microsecond)
}
