package ruleindex

import (
	"math"
	"strconv"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
)

// cellDeg is the geo-grid cell edge in degrees (~5.5 km of latitude):
// small enough that place-sized rule regions cover a handful of cells,
// large enough that a city-sized region stays under the covering cap.
const cellDeg = 0.05

// maxRegionCells caps how many grid cells one region may be posted to.
// Regions larger than that (country-scale rectangles) go to the
// always-candidate list instead — checked on every query, which is exactly
// as expensive as the linear engine treats them.
const maxRegionCells = 4096

// regionEntry is one DISTINCT resolved geometry: rule-literal regions and
// compile-time-resolved gazetteer labels with identical geometry share one
// entry (a whole study cohort scoping rules to the same labeled place
// costs one containment test per decision, not one per rule). rules marks
// every rule conditioned on this geometry.
type regionEntry struct {
	rg    geo.Region
	rules bitset
}

type cellKey struct{ lat, lon int32 }

func cellOf(p geo.Point) cellKey {
	return cellKey{
		lat: int32(math.Floor(p.Lat / cellDeg)),
		lon: int32(math.Floor(p.Lon / cellDeg)),
	}
}

// geoIndex answers "which rules location-match this point" by pruning the
// candidate regions through a uniform grid, then verifying each candidate
// with the exact Region.Contains test the linear engine uses.
type geoIndex struct {
	noLoc   bitset // rules with no location condition
	regions []regionEntry
	byKey   map[string]int32    // canonical geometry → regions index
	cells   map[cellKey][]int32 // cell → region indices, ascending
	always  []int32             // regions too large to grid, ascending
}

func newGeoIndex(rs []*rules.Rule, gaz *geo.Gazetteer) *geoIndex {
	gi := &geoIndex{
		noLoc: newBitset(len(rs)),
		byKey: make(map[string]int32),
		cells: make(map[cellKey][]int32),
	}
	for i, r := range rs {
		id := int32(i)
		if len(r.LocationLabels) == 0 && len(r.Regions) == 0 {
			gi.noLoc.set(id)
			continue
		}
		for _, label := range r.LocationLabels {
			if gaz == nil {
				continue // matches the engine: labels without a gazetteer never match
			}
			if rg, ok := gaz.Lookup(label); ok {
				gi.add(rg, id, len(rs))
			}
		}
		for _, rg := range r.Regions {
			gi.add(rg, id, len(rs))
		}
	}
	return gi
}

// add posts one rule's region condition, deduplicating by geometry.
func (gi *geoIndex) add(rg geo.Region, rule int32, n int) {
	key := regionKey(rg)
	ri, ok := gi.byKey[key]
	if !ok {
		ri = gi.post(rg, n)
		gi.byKey[key] = ri
	}
	gi.regions[ri].rules.set(rule)
}

// regionKey canonically encodes a region's geometry (shortest-round-trip
// float formatting is injective on float64, so distinct geometries cannot
// collide). Labels are ignored: Contains depends only on geometry.
func regionKey(rg geo.Region) string {
	buf := make([]byte, 0, 64)
	f := func(v float64) {
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		buf = append(buf, ',')
	}
	f(rg.Rect.MinLat)
	f(rg.Rect.MinLon)
	f(rg.Rect.MaxLat)
	f(rg.Rect.MaxLon)
	buf = append(buf, '|')
	for _, p := range rg.Polygon {
		f(p.Lat)
		f(p.Lon)
	}
	return string(buf)
}

// post registers a new distinct region and grids its bounding box.
func (gi *geoIndex) post(rg geo.Region, n int) int32 {
	ri := int32(len(gi.regions))
	gi.regions = append(gi.regions, regionEntry{rg: rg, rules: newBitset(n)})
	b := rg.Bounds()
	if b.IsZero() && !rg.HasGeometry() {
		return ri // contains nothing; never a candidate
	}
	minLat := int64(math.Floor(b.MinLat / cellDeg))
	maxLat := int64(math.Floor(b.MaxLat / cellDeg))
	minLon := int64(math.Floor(b.MinLon / cellDeg))
	maxLon := int64(math.Floor(b.MaxLon / cellDeg))
	if (maxLat-minLat+1)*(maxLon-minLon+1) > maxRegionCells {
		gi.always = append(gi.always, ri)
		return ri
	}
	for la := minLat; la <= maxLat; la++ {
		for lo := minLon; lo <= maxLon; lo++ {
			k := cellKey{lat: int32(la), lon: int32(lo)}
			gi.cells[k] = append(gi.cells[k], ri)
		}
	}
	return ri
}

// query marks the rules whose location condition holds at p and appends
// the indices of the containing distinct regions to sig — the point's
// location signature. Two points with equal signatures produce identical
// location outcomes for every rule, which is what makes the signature a
// sound cache-key component.
func (gi *geoIndex) query(p geo.Point, out bitset, sig []int32) []int32 {
	out.copyFrom(gi.noLoc)
	check := func(ri int32) {
		e := &gi.regions[ri]
		if e.rg.Contains(p) {
			sig = append(sig, ri)
			out.or(e.rules)
		}
	}
	// Both lists are ascending and disjoint (a region is posted either to
	// cells or to always), so visiting cells first then always keeps sig
	// deterministic for equal points.
	for _, ri := range gi.cells[cellOf(p)] {
		check(ri)
	}
	for _, ri := range gi.always {
		check(ri)
	}
	return sig
}
