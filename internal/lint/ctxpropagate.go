package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPropagate enforces context threading below cmd/:
//
//  1. Library code must not mint fresh contexts with context.Background()
//     or context.TODO(). The only exemption is the module's convenience
//     convention — a wrapper whose entire body is a single call delegating
//     to its own ...Ctx sibling (`func (c *C) Query(..) { return
//     c.QueryCtx(context.Background(), ..) }`), which is how the HTTP
//     clients expose deadline-free variants.
//  2. Inside any function that already has a context.Context parameter in
//     scope, calling Foo(...) when a FooCtx sibling exists drops the
//     caller's deadline and cancellation on the floor; the call site must
//     use the Ctx variant.
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "library code must propagate request contexts instead of minting context.Background()",
	AppliesTo: func(modulePath, pkgPath string) bool {
		return strings.HasPrefix(pkgPath, modulePath+"/internal/")
	},
	Run: runCtxPropagate,
}

func runCtxPropagate(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkBackground(pass, call, stack)
			checkDroppedCtx(pass, call, stack)
			return true
		})
	}
}

// checkBackground implements rule 1.
func checkBackground(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	fn, ok := calleeObj(pass.Pkg, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() != "Background" && fn.Name() != "TODO" {
		return
	}
	if isDelegatingWrapper(enclosingFuncDecl(stack)) {
		return
	}
	pass.Reportf(call.Pos(),
		"context.%s() in library code severs deadline/cancellation propagation; thread the caller's ctx (or make this a single-statement wrapper delegating to a ...Ctx sibling)",
		fn.Name())
}

// checkDroppedCtx implements rule 2.
func checkDroppedCtx(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	if !ctxInScope(pass.Pkg, stack) {
		return
	}
	fn, ok := calleeObj(pass.Pkg, call).(*types.Func)
	if !ok || strings.HasSuffix(fn.Name(), "Ctx") || signatureTakesContext(fn) {
		return
	}
	sibling := ctxSibling(pass, call, fn)
	if sibling == nil || !signatureTakesContext(sibling) {
		return
	}
	pass.Reportf(call.Pos(),
		"call to %s drops the in-scope request context; use %s(ctx, ...) so deadlines propagate",
		fn.Name(), sibling.Name())
}

// ctxSibling looks for a FooCtx function/method next to the callee Foo.
func ctxSibling(pass *Pass, call *ast.CallExpr, fn *types.Func) *types.Func {
	want := fn.Name() + "Ctx"
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if pn, ok := pass.Pkg.Info.Uses[x].(*types.PkgName); ok {
				sib, _ := pn.Imported().Scope().Lookup(want).(*types.Func)
				return sib
			}
		}
		recv := pass.Pkg.Info.Types[sel.X].Type
		if recv == nil {
			return nil
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, pass.Pkg.Types, want)
		sib, _ := obj.(*types.Func)
		return sib
	}
	if fn.Pkg() == nil {
		return nil
	}
	sib, _ := fn.Pkg().Scope().Lookup(want).(*types.Func)
	return sib
}

// ctxInScope reports whether any enclosing function on the stack declares
// a context.Context parameter (closures capture it, so nested literals
// count too).
func ctxInScope(pkg *Package, stack []ast.Node) bool {
	for _, n := range stack {
		var ft *ast.FuncType
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			if isContextType(pkg.Info.Types[field.Type].Type) {
				return true
			}
		}
	}
	return false
}

func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// isDelegatingWrapper reports whether fd's whole body is one call to its
// own ...Ctx sibling — the module's sanctioned deadline-free convenience
// form.
func isDelegatingWrapper(fd *ast.FuncDecl) bool {
	if fd == nil || fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch st := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(st.Results) != 1 {
			return false
		}
		call, _ = ast.Unparen(st.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = ast.Unparen(st.X).(*ast.CallExpr)
	}
	if call == nil {
		return false
	}
	var name string
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	}
	return name == fd.Name.Name+"Ctx"
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func signatureTakesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
