package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Module loading: sslint type-checks the whole module with nothing but
// the standard library (go/parser + go/types + go/importer), matching the
// repo's zero-dependency policy. Module-internal imports resolve against
// packages we have already checked; standard-library imports resolve
// through the compiler's export data via importer.Default, with a
// source-level importer as fallback so the tool keeps working even when
// export data is stale.
//
// Parsing and type-checking are parallel: files parse under a bounded
// worker pool (token.FileSet is safe for concurrent use), and packages
// type-check under bounded workers scheduled over the import DAG — a
// package becomes ready the moment its last module-internal dependency
// finishes, so independent subtrees (cmd/*, internal leaf packages) check
// concurrently. All importer lookups go through one shared, mutex-guarded
// cache, so each stdlib package's export data is read exactly once per
// load no matter how many packages import it.

// Package is one type-checked package of the module.
type Package struct {
	// Path is the import path ("sensorsafe/internal/broker").
	Path string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Module is a fully parsed and type-checked Go module.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path from go.mod ("sensorsafe").
	Path string
	// Fset positions every file in the module (and any fixture packages
	// loaded later through LoadPackage).
	Fset *token.FileSet
	// Pkgs lists the module's packages sorted by import path.
	Pkgs []*Package

	goVersion string
	mu        sync.RWMutex // guards byPath during parallel type-checking
	byPath    map[string]*types.Package
	imp       *chainImporter

	// cgOnce/cg cache the full-module call graph so every interprocedural
	// analyzer of a run shares one build (see callgraph.go).
	cgOnce sync.Once
	cg     *CallGraph
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every package under root (the
// directory containing go.mod), skipping testdata trees, hidden
// directories, and _test.go files. Work is spread over one worker per CPU;
// use LoadModuleWorkers to pin the width (the lint benchmarks pin 1 to
// measure the serial baseline).
func LoadModule(root string) (*Module, error) {
	return LoadModuleWorkers(root, 0)
}

// LoadModuleWorkers is LoadModule with an explicit type-checking worker
// bound; workers <= 0 means one per CPU.
func LoadModuleWorkers(root string, workers int) (*Module, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, goVersion, err := readGoMod(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:      root,
		Path:      modPath,
		Fset:      token.NewFileSet(),
		goVersion: goVersion,
		byPath:    make(map[string]*types.Package),
	}
	m.imp = &chainImporter{m: m, std: importer.Default(), cache: make(map[string]*types.Package)}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	parsed, deps, err := m.parseDirs(dirs, workers)
	if err != nil {
		return nil, err
	}
	if err := m.checkAll(parsed, deps, workers); err != nil {
		return nil, err
	}
	for _, pkg := range parsed {
		m.Pkgs = append(m.Pkgs, pkg)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// parseDirs parses every candidate directory under a bounded worker pool.
func (m *Module) parseDirs(dirs []string, workers int) (map[string]*Package, map[string][]string, error) {
	type parseResult struct {
		pkg     *Package
		imports []string
		err     error
	}
	results := make([]parseResult, len(dirs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pkg, imports, err := m.parseDir(dir)
			results[i] = parseResult{pkg, imports, err}
		}(i, dir)
	}
	wg.Wait()

	parsed := make(map[string]*Package, len(dirs))
	deps := make(map[string][]string, len(dirs))
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		if r.pkg == nil {
			continue // no buildable non-test files
		}
		parsed[r.pkg.Path] = r.pkg
		for _, imp := range r.imports {
			if imp == m.Path || strings.HasPrefix(imp, m.Path+"/") {
				deps[r.pkg.Path] = append(deps[r.pkg.Path], imp)
			}
		}
	}
	return parsed, deps, nil
}

// checkAll type-checks the parsed packages with bounded workers scheduled
// over the import DAG: a package is dispatched once every module-internal
// dependency has finished. topoSort runs first purely to reject cycles and
// missing directories with a precise error.
func (m *Module) checkAll(parsed map[string]*Package, deps map[string][]string, workers int) error {
	if _, err := topoSort(parsed, deps); err != nil {
		return err
	}
	remaining := make(map[string]int, len(parsed)) // unchecked dependency count
	dependents := make(map[string][]string)
	for path := range parsed {
		remaining[path] = len(deps[path])
		for _, dep := range deps[path] {
			dependents[dep] = append(dependents[dep], path)
		}
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		ready    []string
		inflight int
		firstErr error
	)
	for path, n := range remaining {
		if n == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && inflight > 0 && firstErr == nil {
					cond.Wait()
				}
				if len(ready) == 0 || firstErr != nil {
					mu.Unlock()
					cond.Broadcast()
					return
				}
				path := ready[0]
				ready = ready[1:]
				inflight++
				mu.Unlock()

				err := m.check(parsed[path], m.goVersion)

				mu.Lock()
				inflight--
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					for _, dep := range dependents[path] {
						remaining[dep]--
						if remaining[dep] == 0 {
							ready = append(ready, dep)
						}
					}
				}
				mu.Unlock()
				cond.Broadcast()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// LoadPackage parses and type-checks a single extra directory (fixture
// packages under testdata) against the already-loaded module, under the
// given synthetic import path. The module's packages and the standard
// library are importable from the fixture.
func (m *Module) LoadPackage(dir, importPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, _, err := m.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg.Path = importPath
	if err := m.check(pkg, ""); err != nil {
		return nil, err
	}
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory. It returns nil
// (no error) when the directory holds no buildable files.
func (m *Module) parseDir(dir string) (*Package, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, nil, nil
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, nil, err
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}
	var importList []string
	for imp := range imports {
		importList = append(importList, imp)
	}
	sort.Strings(importList)
	return &Package{Path: path, Dir: dir, Files: files}, importList, nil
}

// check type-checks pkg and registers it for import by later packages.
func (m *Module) check(pkg *Package, goVersion string) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := types.Config{Importer: m.imp, GoVersion: goVersion}
	tpkg, err := cfg.Check(pkg.Path, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-check %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	m.mu.Lock()
	m.byPath[pkg.Path] = tpkg
	m.mu.Unlock()
	return nil
}

// chainImporter resolves module-internal imports from the packages
// type-checked so far and everything else through the toolchain's export
// data, falling back to source import if export data is unusable. The
// external-package cache is shared by every concurrent type-check worker;
// its mutex also serializes the underlying importers, which are not
// documented as concurrency-safe.
type chainImporter struct {
	m   *Module
	std types.Importer

	mu    sync.Mutex
	cache map[string]*types.Package // external packages; guarded by mu
	src   types.Importer            // lazily-built source importer; guarded by mu
}

func (ci *chainImporter) Import(path string) (*types.Package, error) {
	ci.m.mu.RLock()
	tpkg, ok := ci.m.byPath[path]
	ci.m.mu.RUnlock()
	if ok {
		return tpkg, nil
	}
	if path == ci.m.Path || strings.HasPrefix(path, ci.m.Path+"/") {
		return nil, fmt.Errorf("lint: module package %s not loaded (import cycle or missing dir?)", path)
	}
	ci.mu.Lock()
	defer ci.mu.Unlock()
	if tpkg, ok := ci.cache[path]; ok {
		return tpkg, nil
	}
	tpkg, err := ci.std.Import(path)
	if err != nil {
		if ci.src == nil {
			ci.src = importer.ForCompiler(ci.m.Fset, "source", nil)
		}
		var srcErr error
		tpkg, srcErr = ci.src.Import(path)
		if srcErr != nil {
			return nil, fmt.Errorf("lint: import %q: %v (source fallback: %v)", path, err, srcErr)
		}
	}
	ci.cache[path] = tpkg
	return tpkg, nil
}

// packageDirs lists directories under root that may hold Go packages.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// topoSort orders packages so every module-internal dependency precedes
// its importer.
func topoSort(pkgs map[string]*Package, deps map[string][]string) ([]*Package, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		for _, dep := range deps[path] {
			if _, ok := pkgs[dep]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no source directory", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkgs[path])
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// readGoMod extracts the module path and (optional) go version directive.
func readGoMod(path string) (modPath, goVersion string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if after, ok := strings.CutPrefix(line, "module "); ok && modPath == "" {
			modPath = strings.TrimSpace(after)
		}
		if after, ok := strings.CutPrefix(line, "go "); ok && goVersion == "" {
			goVersion = "go" + strings.TrimSpace(after)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("lint: no module directive in %s", path)
	}
	return modPath, goVersion, nil
}
