// Package datastore implements a SensorSafe remote data store (paper §5.1
// and Fig. 2): the per-contributor (or institutional, multi-contributor)
// server that ingests sensor uploads through the wave-segment optimizer,
// stores them in the embedded segment store, holds each contributor's
// privacy rules and labeled places, and answers consumer queries through
// the query/privacy processing module — every byte released passes the
// rule engine and the abstraction transform.
package datastore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/audit"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/query"
	"sensorsafe/internal/recommend"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/ruleindex"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/segstore"
	"sensorsafe/internal/storage"
	"sensorsafe/internal/stream"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

// Hot-path metrics (paper §5.1 upload/query pipeline): how much the
// wave-segment optimizer compacts uploads, how much a consumer query
// scans, and what rule enforcement decided for every candidate span.
var (
	metricUploadBatches = obs.NewCounter("sensorsafe_datastore_uploads_total",
		"Accepted upload batches.")
	metricUploadSegments = obs.NewCounter("sensorsafe_datastore_upload_segments_total",
		"Wave segments received in upload batches, before optimization.")
	metricSegmentsMerged = obs.NewCounter("sensorsafe_datastore_segments_merged_total",
		"Wave segments eliminated by the wave-segment merge optimization.")
	metricSegmentsScanned = obs.NewCounter("sensorsafe_datastore_segments_scanned_total",
		"Stored segments scanned while answering consumer queries.")
	metricReleases = obs.NewCounterVec("sensorsafe_datastore_releases_total",
		"Release decisions after rule enforcement, per enforcement span.",
		"decision")
	metricSyncPending = obs.NewGauge("sensorsafe_datastore_sync_pending",
		"Rule replicas queued in the durable outbox awaiting a broker push.")
	metricSyncPushes = obs.NewCounterVec("sensorsafe_datastore_sync_pushes_total",
		"Replica pushes attempted against the sync target, by result.", "result")
	metricAntiEntropy = obs.NewCounterVec("sensorsafe_datastore_antientropy_total",
		"Anti-entropy reconciliation rounds, by result.", "result")
)

// Errors returned by the service.
var (
	ErrNotContributor = errors.New("datastore: key does not belong to a contributor")
	ErrNotConsumer    = errors.New("datastore: key does not belong to a consumer")
	ErrWrongOwner     = errors.New("datastore: segment contributor does not match key owner")
	ErrUnknownUser    = errors.New("datastore: unknown user")
)

// SyncTarget receives privacy-rule replicas whenever a contributor's rules
// or labeled places change; the broker implements this (paper §5.2:
// "remote data stores automatically communicate with the broker to
// synchronize the privacy rules"). Replication is versioned and
// anti-entropy-based: pushes carry the store's rule-set version so the
// target can reject stale or duplicated replicas, and the digest exchange
// lets the store discover which replicas the target is missing after an
// outage.
type SyncTarget interface {
	// SyncRules applies one contributor's replica at the given version.
	// Implementations must be idempotent per version and reject versions
	// older than what they already applied with an error satisfying
	// resilience.IsStale.
	SyncRules(contributor string, version uint64, ruleSet []byte, places []geo.Region) error
	// SyncDigest reports every contributor this store hosts with its
	// current rule version; the target answers with the names whose
	// replicas are behind and need a full push.
	SyncDigest(storeAddr string, versions map[string]uint64) ([]string, error)
}

// Directory is the broker-side contributor directory; stores push new
// contributor registrations to it (paper §4: "When the data contributors
// are first registered on their data store, they are automatically
// registered on the broker, too").
type Directory interface {
	RegisterContributor(name, storeAddr string) error
}

// Options configures a store service.
type Options struct {
	// Dir is the storage directory ("" = in-memory).
	Dir string
	// MaxSegmentSamples caps merged wave segments
	// (wavesegment.DefaultMaxSamples if zero).
	MaxSegmentSamples int
	// Geocoder used for location abstraction (GridGeocoder if nil).
	Geocoder geo.Geocoder
	// Sync, when set, receives rule replicas on every change.
	Sync SyncTarget
	// Directory, when set, receives contributor registrations.
	Directory Directory
	// Name identifies this store instance (e.g. its address).
	Name string
	// StreamBufferSegments caps each live subscription's undelivered
	// backlog (stream.DefaultBufferSegments if zero).
	StreamBufferSegments int
	// SyncInterval, when > 0 and Sync is set, runs the background
	// anti-entropy loop at this cadence: drain the durable outbox, exchange
	// a version digest, push whatever the target reports as stale. Zero
	// means reconciliation only happens on explicit AntiEntropy/ResyncAll
	// calls (the pre-existing behavior; tests rely on it).
	SyncInterval time.Duration
	// SegstoreDir overrides where the persistent segment engine keeps
	// its files (default Dir/segstore). Ignored for in-memory stores.
	SegstoreDir string
	// MemtableBytes bounds the segment engine's hot tail before a
	// flush to disk (segstore default if zero).
	MemtableBytes int64
	// CompactInterval is the segment engine's background compaction
	// period (0 disables background compaction).
	CompactInterval time.Duration
	// LegacyStorage forces the old in-memory index + flat WAL engine
	// even when Dir is set (kept for comparison benchmarks).
	LegacyStorage bool
}

// contributorState is the per-contributor slice of an (institutional)
// store: rules, labeled places, and the compiled engine plus its indexed
// evaluation plan.
type contributorState struct {
	rules     []*rules.Rule
	gazetteer *geo.Gazetteer
	engine    *rules.Engine
	// index is the compiled evaluation plan over engine's rules, rebuilt
	// (with a fresh decision cache) on every rule or place mutation so a
	// version bump can never serve a stale memoized decision.
	index *ruleindex.Index
	// groups maps consumer name → group/study names, as assigned by this
	// contributor (used by group-scoped rules).
	groups map[string][]string
	// ruleVersion increments on every rule or place change; live-stream
	// deliveries are stamped with it so a consumer can see exactly which
	// rule set filtered each segment.
	ruleVersion uint64
}

// decider returns the evaluation seam release paths must use: the indexed
// plan when compiled, else the linear engine counted as a fallback. Nil
// when the contributor has no rules (default deny).
func (st *contributorState) decider() rules.Decider {
	if st.index != nil {
		return st.index
	}
	if st.engine != nil {
		return ruleindex.Fallback(st.engine)
	}
	return nil
}

// recompileIndex rebuilds the contributor's indexed evaluation plan from
// the current engine, stamped with the current rule version. Callers must
// hold the service write lock and must have bumped ruleVersion first.
func (st *contributorState) recompileIndex() {
	if st.engine == nil {
		st.index = nil
		return
	}
	st.index = ruleindex.FromEngine(st.engine, ruleindex.Options{Version: st.ruleVersion})
}

// Service is one remote data store.
type Service struct {
	opts   Options
	store  storage.Engine
	users  *auth.Registry
	web    *auth.Passwords
	trail  *audit.Trail
	stream *stream.Hub

	mu           sync.RWMutex
	contributors map[string]*contributorState // guarded by mu
	// pending is the durable replica outbox: contributor → rule-set version
	// queued for push. Entries survive restarts (persisted in the state
	// file) and are cleared only when the sync target acknowledges the
	// version (or rejects it as stale, which means it already converged).
	// Guarded by mu.
	pending map[string]uint64

	stopSync chan struct{}
	syncDone chan struct{}
}

// New opens a remote data store service.
func New(opts Options) (*Service, error) {
	if opts.Geocoder == nil {
		opts.Geocoder = geo.GridGeocoder{}
	}
	if opts.MaxSegmentSamples <= 0 {
		opts.MaxSegmentSamples = wavesegment.DefaultMaxSamples
	}
	st, err := openEngine(opts)
	if err != nil {
		return nil, err
	}
	svc := &Service{
		opts:         opts,
		store:        st,
		users:        auth.NewRegistry(),
		web:          auth.NewPasswords(0),
		trail:        audit.NewTrail(0),
		contributors: make(map[string]*contributorState),
		pending:      make(map[string]uint64),
	}
	svc.stream = stream.New(stream.Options{
		Rules:          svc,
		Geocoder:       opts.Geocoder,
		BufferSegments: opts.StreamBufferSegments,
		OnChange:       func() { _ = svc.saveState() },
	})
	if err := svc.loadState(); err != nil {
		st.Close()
		return nil, err
	}
	if opts.Sync != nil && opts.SyncInterval > 0 {
		svc.stopSync = make(chan struct{})
		svc.syncDone = make(chan struct{})
		go svc.syncLoop()
	}
	return svc, nil
}

// Close persists metadata and releases the underlying storage. Saving here
// captures stream positions advanced by uploads (which, unlike metadata
// mutations, do not rewrite the state file on the hot path), so a graceful
// shutdown surfaces undelivered segments as a gap instead of losing them.
func (s *Service) Close() error {
	if s.stopSync != nil {
		close(s.stopSync)
		<-s.syncDone
		s.stopSync = nil
	}
	if err := s.saveState(); err != nil {
		s.store.Close()
		return err
	}
	return s.store.Close()
}

// Name returns the store's configured name.
func (s *Service) Name() string { return s.opts.Name }

// Users exposes the registry for server wiring (web login bootstrap).
func (s *Service) Users() *auth.Registry { return s.users }

// Web exposes the password/session store for the web UI layer.
func (s *Service) Web() *auth.Passwords { return s.web }

// Storage exposes the underlying segment engine (read-mostly; used by
// maintenance tooling and benchmarks).
func (s *Service) Storage() storage.Engine { return s.store }

// SegmentStoreStats reports the persistent segment engine's internals
// (file counts, levels, live/dead bytes, last compaction); ok is false
// when the service runs the in-memory legacy engine.
func (s *Service) SegmentStoreStats() (segstore.Stats, bool) {
	if eng, ok := s.store.(*segstore.Store); ok {
		return eng.Stats(), true
	}
	return segstore.Stats{}, false
}

// RegisterContributor creates a contributor account with a fresh API key
// and an empty (deny-everything) rule set.
func (s *Service) RegisterContributor(name string) (auth.User, error) {
	u, err := s.users.Register(name, auth.RoleContributor)
	if err != nil {
		return auth.User{}, err
	}
	s.mu.Lock()
	s.contributors[normName(name)] = &contributorState{
		gazetteer: geo.NewGazetteer(),
		groups:    make(map[string][]string),
	}
	s.mu.Unlock()
	if err := s.saveState(); err != nil {
		return u, err
	}
	if s.opts.Directory != nil {
		if err := s.opts.Directory.RegisterContributor(u.Name, s.opts.Name); err != nil {
			return u, fmt.Errorf("datastore: broker registration for %s: %w", name, err)
		}
	}
	return u, nil
}

// ProvisionConsumer registers a consumer and returns only the API key; it
// satisfies the broker's StoreConn for in-process wiring. The context is
// part of the StoreConn contract (request-ID correlation) and unused here
// because no further hop exists.
func (s *Service) ProvisionConsumer(_ context.Context, name string) (auth.APIKey, error) {
	u, err := s.RegisterConsumer(name)
	if err != nil {
		return "", err
	}
	return u.Key, nil
}

// Addr returns the store's name/address for broker directories.
func (s *Service) Addr() string { return s.opts.Name }

// RegisterConsumer creates a consumer account with a fresh API key. The
// broker calls this on behalf of consumers (paper §5.4: "the registration
// process is automatically handled by the broker").
func (s *Service) RegisterConsumer(name string) (auth.User, error) {
	u, err := s.users.Register(name, auth.RoleConsumer)
	if err != nil {
		return auth.User{}, err
	}
	return u, s.saveState()
}

// RotateKey invalidates the presented API key and issues a fresh one for
// the same account — the recovery path when a key leaks (the paper's
// future-work security analysis; keys act as username and password, §5.4).
func (s *Service) RotateKey(key auth.APIKey) (auth.APIKey, error) {
	u, err := s.users.Authenticate(key)
	if err != nil {
		return "", err
	}
	newKey, err := s.users.Rotate(u.Name)
	if err != nil {
		return "", err
	}
	return newKey, s.saveState()
}

// authenticate resolves a key and checks the expected role.
func (s *Service) authenticate(key auth.APIKey, role auth.Role) (auth.User, error) {
	u, err := s.users.Authenticate(key)
	if err != nil {
		return auth.User{}, err
	}
	if u.Role != role {
		if role == auth.RoleContributor {
			return auth.User{}, ErrNotContributor
		}
		return auth.User{}, ErrNotConsumer
	}
	return u, nil
}

func normName(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// stateLocked resolves a contributor's rule state; callers must hold s.mu.
func (s *Service) stateLocked(contributor string) (*contributorState, error) {
	st, ok := s.contributors[normName(contributor)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, contributor)
	}
	return st, nil
}

// Upload ingests a batch of wave segments for the contributor owning the
// key. Packets run through the wave-segment optimizer (merging
// timestamp-consecutive packets, §5.1) and, when possible, the first merged
// segment is coalesced with the contributor's most recent stored segment so
// steady streaming still produces few large records. Returns the number of
// records written.
func (s *Service) Upload(key auth.APIKey, segs []*wavesegment.Segment) (int, error) {
	return s.UploadCtx(context.Background(), key, segs)
}

// UploadCtx is Upload carrying the caller's context, so HTTP ingest spans
// correlate with the request trace instead of a fresh background context.
func (s *Service) UploadCtx(ctx context.Context, key auth.APIKey, segs []*wavesegment.Segment) (written int, err error) {
	ctx, uspan, stopUpload := obs.Span(ctx, "datastore.upload")
	defer func() {
		uspan.SetAttr(trace.Int("segments", len(segs)), trace.Int("records", written))
		stopUpload(err)
	}()
	u, err := s.authenticate(key, auth.RoleContributor)
	if err != nil {
		return 0, err
	}
	for _, seg := range segs {
		if seg == nil {
			return 0, fmt.Errorf("datastore: nil segment in upload")
		}
		if seg.Contributor == "" {
			seg.Contributor = u.Name
		}
		if !strings.EqualFold(seg.Contributor, u.Name) {
			return 0, fmt.Errorf("%w: %q uploads as %q", ErrWrongOwner, u.Name, seg.Contributor)
		}
		if err := seg.Validate(); err != nil {
			return 0, err
		}
	}
	// Multi-device uploads interleave streams with different channel sets
	// (chest band vs phone); the optimizer merges only within one stream,
	// so group by channel signature first, preserving arrival order per
	// group.
	for _, group := range groupByStream(segs) {
		merged, err := wavesegment.OptimizeAll(group, s.opts.MaxSegmentSamples)
		if err != nil {
			return written, err
		}
		if len(merged) == 0 {
			continue
		}
		// Live subscribers get exactly the new post-merge segments; the
		// tail coalesce below may fold the first into an already-stored
		// (and already-published) record, so capture before it runs.
		fresh := append([]*wavesegment.Segment(nil), merged...)
		merged = s.coalesceTail(u.Name, merged)
		for _, seg := range merged {
			if _, err := s.store.Put(seg); err != nil {
				return written, err
			}
			written++
		}
		for _, seg := range fresh {
			s.stream.Publish(u.Name, seg)
		}
	}
	metricUploadBatches.Inc()
	metricUploadSegments.Add(float64(len(segs)))
	if d := len(segs) - written; d > 0 {
		metricSegmentsMerged.Add(float64(d))
	}
	return written, nil
}

// groupByStream partitions an upload batch by channel signature, keeping
// per-group arrival order and overall first-seen group order.
func groupByStream(segs []*wavesegment.Segment) [][]*wavesegment.Segment {
	index := make(map[string]int)
	var groups [][]*wavesegment.Segment
	for _, seg := range segs {
		key := strings.Join(seg.Channels, "\x00")
		i, ok := index[key]
		if !ok {
			i = len(groups)
			index[key] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], seg)
	}
	return groups
}

// coalesceTail merges the first new segment into the contributor's latest
// stored record when they are timestamp-consecutive and under the size cap.
func (s *Service) coalesceTail(contributor string, merged []*wavesegment.Segment) []*wavesegment.Segment {
	first := merged[0]
	sameStream := func(seg *wavesegment.Segment) bool {
		if len(seg.Channels) != len(first.Channels) {
			return false
		}
		for i := range seg.Channels {
			if seg.Channels[i] != first.Channels[i] {
				return false
			}
		}
		return true
	}
	last, ok := s.store.LatestBeforeFunc(contributor, first.StartTime().Add(first.Interval), sameStream)
	if !ok || !wavesegment.CanMerge(last.Segment, first) {
		return merged
	}
	if last.Segment.NumSamples()+first.NumSamples() > s.opts.MaxSegmentSamples {
		return merged
	}
	joined, err := wavesegment.Merge(last.Segment, first)
	if err != nil {
		return merged
	}
	if err := s.store.Delete(last.ID); err != nil {
		return merged
	}
	return append([]*wavesegment.Segment{joined}, merged[1:]...)
}

// SetRules replaces the contributor's privacy rules from Fig. 4 JSON and
// pushes the replica to the sync target.
func (s *Service) SetRules(key auth.APIKey, ruleSetJSON []byte) error {
	u, err := s.authenticate(key, auth.RoleContributor)
	if err != nil {
		return err
	}
	rs, err := rules.UnmarshalRuleSet(ruleSetJSON)
	if err != nil {
		return err
	}
	s.mu.Lock()
	st, err := s.stateLocked(u.Name)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	engine, err := rules.NewEngine(rs, st.gazetteer)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	st.rules = rs
	st.engine = engine
	st.ruleVersion++
	st.recompileIndex()
	s.enqueueSyncLocked(u.Name, st.ruleVersion)
	s.mu.Unlock()
	if err := s.saveState(); err != nil {
		return err
	}
	// Replicate best-effort: the change is already committed locally and
	// queued in the durable outbox, so a broker outage here is not an
	// error — the anti-entropy loop (or ResyncAll) delivers it later.
	_ = s.pushSync(u.Name)
	return nil
}

// Rules returns the contributor's current rule set as Fig. 4 JSON.
func (s *Service) Rules(key auth.APIKey) ([]byte, error) {
	u, err := s.authenticate(key, auth.RoleContributor)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, err := s.stateLocked(u.Name)
	if err != nil {
		return nil, err
	}
	return rules.MarshalRuleSet(st.rules)
}

// DefinePlace registers (or replaces) a labeled region in the
// contributor's gazetteer and recompiles the rule engine.
func (s *Service) DefinePlace(key auth.APIKey, label string, region geo.Region) error {
	u, err := s.authenticate(key, auth.RoleContributor)
	if err != nil {
		return err
	}
	s.mu.Lock()
	st, err := s.stateLocked(u.Name)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if err := st.gazetteer.Define(label, region); err != nil {
		s.mu.Unlock()
		return err
	}
	engine, err := rules.NewEngine(st.rules, st.gazetteer)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	st.engine = engine
	st.ruleVersion++
	st.recompileIndex()
	s.enqueueSyncLocked(u.Name, st.ruleVersion)
	s.mu.Unlock()
	if err := s.saveState(); err != nil {
		return err
	}
	_ = s.pushSync(u.Name)
	return nil
}

// Places lists the contributor's labeled regions.
func (s *Service) Places(key auth.APIKey) ([]geo.Region, error) {
	u, err := s.authenticate(key, auth.RoleContributor)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, err := s.stateLocked(u.Name)
	if err != nil {
		return nil, err
	}
	return placesOf(st), nil
}

func placesOf(st *contributorState) []geo.Region {
	labels := st.gazetteer.Labels()
	sort.Strings(labels)
	out := make([]geo.Region, 0, len(labels))
	for _, l := range labels {
		if rg, ok := st.gazetteer.Lookup(l); ok {
			out = append(out, rg)
		}
	}
	return out
}

// AssignConsumerGroups records the groups/studies a consumer belongs to for
// this contributor's group-scoped rules.
func (s *Service) AssignConsumerGroups(key auth.APIKey, consumer string, groups []string) error {
	u, err := s.authenticate(key, auth.RoleContributor)
	if err != nil {
		return err
	}
	s.mu.Lock()
	st, err := s.stateLocked(u.Name)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	st.groups[normName(consumer)] = append([]string(nil), groups...)
	s.mu.Unlock()
	return s.saveState()
}

// enqueueSyncLocked records a replica version in the durable outbox;
// caller holds s.mu.
func (s *Service) enqueueSyncLocked(contributor string, version uint64) {
	if s.opts.Sync == nil {
		return
	}
	s.pending[normName(contributor)] = version
	metricSyncPending.Set(float64(len(s.pending)))
}

// pushSync replicates the contributor's rules and places (stamped with
// the current rule version) to the sync target, if configured. On success
// — or on a stale rejection, which means the target already converged
// past this version — the outbox entry is cleared; on any other failure
// it stays queued for the anti-entropy loop.
func (s *Service) pushSync(contributor string) error {
	if s.opts.Sync == nil {
		return nil
	}
	s.mu.RLock()
	st, err := s.stateLocked(contributor)
	if err != nil {
		s.mu.RUnlock()
		return err
	}
	version := st.ruleVersion
	data, err := rules.MarshalRuleSet(st.rules)
	places := placesOf(st)
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	err = s.opts.Sync.SyncRules(contributor, version, data, places)
	switch {
	case err == nil:
		metricSyncPushes.With("ok").Inc()
	case resilience.IsStale(err):
		metricSyncPushes.With("stale").Inc()
	default:
		metricSyncPushes.With("error").Inc()
		return err
	}
	s.mu.Lock()
	if v, ok := s.pending[normName(contributor)]; ok && v <= version {
		delete(s.pending, normName(contributor))
		metricSyncPending.Set(float64(len(s.pending)))
		s.mu.Unlock()
		return s.saveState()
	}
	s.mu.Unlock()
	return nil
}

// ResyncAll pushes every contributor's replica (used when a broker
// reconnects or an operator forces a full resync).
func (s *Service) ResyncAll() error {
	s.mu.RLock()
	names := make([]string, 0, len(s.contributors))
	for name := range s.contributors {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		if err := s.pushSync(n); err != nil {
			return err
		}
	}
	return nil
}

// SyncBacklog reports how many replicas sit in the durable outbox.
func (s *Service) SyncBacklog() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pending)
}

// AntiEntropy performs one reconciliation round against the sync target:
// drain the durable outbox, then exchange a version digest and push
// whatever the target reports as stale. Returns the first error so the
// background loop can back off; partial progress still counts (each
// successful push clears its own outbox entry).
func (s *Service) AntiEntropy() error {
	if s.opts.Sync == nil {
		return nil
	}
	s.mu.RLock()
	queued := make([]string, 0, len(s.pending))
	for name := range s.pending {
		queued = append(queued, name)
	}
	versions := make(map[string]uint64, len(s.contributors))
	for name, cs := range s.contributors {
		versions[name] = cs.ruleVersion
	}
	s.mu.RUnlock()
	sort.Strings(queued)
	var firstErr error
	for _, name := range queued {
		if err := s.pushSync(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	stale, err := s.opts.Sync.SyncDigest(s.opts.Name, versions)
	if err != nil {
		if firstErr == nil {
			firstErr = err
		}
	} else {
		for _, name := range stale {
			if err := s.pushSync(name); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		metricAntiEntropy.With("error").Inc()
		return firstErr
	}
	metricAntiEntropy.With("ok").Inc()
	return nil
}

// syncLoop runs anti-entropy in the background at SyncInterval, backing
// off exponentially (to 8× the interval) while the target keeps failing
// so a broker outage does not become a hammering loop.
func (s *Service) syncLoop() {
	defer close(s.syncDone)
	interval := s.opts.SyncInterval
	delay := interval
	for {
		t := time.NewTimer(delay)
		select {
		case <-s.stopSync:
			t.Stop()
			return
		case <-t.C:
		}
		if err := s.AntiEntropy(); err != nil {
			if delay < 8*interval {
				delay *= 2
			}
		} else {
			delay = interval
		}
	}
}

// Query answers a consumer's data request: scan matching records, enforce
// each contributor's privacy rules span by span, then apply the query's
// channel projection and context filter to the *released* data (filtering
// on released rather than raw annotations so the filter cannot leak
// withheld contexts).
func (s *Service) Query(key auth.APIKey, q *query.Query) ([]*abstraction.Release, error) {
	return s.QueryCtx(context.Background(), key, q)
}

// QueryCtx is Query carrying the caller's context: enforcement spans land
// in the request trace, and HTTP handlers must use it so deadlines reach
// the rule engine.
func (s *Service) QueryCtx(ctx context.Context, key auth.APIKey, q *query.Query) (out []*abstraction.Release, err error) {
	ctx, qspan, stopQuery := obs.Span(ctx, "datastore.query")
	defer func() {
		qspan.SetAttr(trace.Int("releases", len(out)))
		stopQuery(err)
	}()
	// Audit events cross-reference the query's trace: the trail answers
	// what was released, the trace answers why.
	traceID := trace.IDFromContext(ctx)
	u, err := s.authenticate(key, auth.RoleConsumer)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	results, err := s.store.ScanRefs(q.Storage())
	if err != nil {
		return nil, err
	}
	metricSegmentsScanned.Add(float64(len(results)))

	for _, res := range results {
		seg := res.Segment
		// Clip to the requested window: the scan matches any overlapping
		// record, but only samples inside [From, To) may be released.
		if !q.From.IsZero() || !q.To.IsZero() {
			if seg = seg.Slice(q.From, q.To); seg == nil {
				continue
			}
		}
		s.mu.RLock()
		st, err := s.stateLocked(seg.Contributor)
		var decider rules.Decider
		var groups []string
		var ruleVersion uint64
		if err == nil {
			decider = st.decider()
			groups = st.groups[normName(u.Name)]
			ruleVersion = st.ruleVersion
		}
		s.mu.RUnlock()
		if err != nil || decider == nil {
			metricReleases.With("deny").Inc()
			continue // contributor without rules: default deny
		}
		// The rule-eval span carries decision provenance: matched rule
		// IDs, the rule-set version they came from, the effective
		// allow/abstract/deny class, and per-release granted granularity
		// events — every release below is explainable from the trace.
		_, espan, stopEval := obs.Span(ctx, "datastore.rule_eval")
		espan.SetAttr(trace.String("contributor", seg.Contributor),
			trace.Int64("rule_version", int64(ruleVersion)))
		rels, decisions, err := abstraction.EnforceExplained(decider, u.Name, groups, seg, s.opts.Geocoder)
		if err != nil {
			stopEval(err)
			return nil, err
		}
		delivered := 0
		decisionClass := "deny"
		matched := make(map[string]bool)
		for i, rel := range rels {
			if rel = postFilter(rel, q); rel != nil {
				out = append(out, rel)
				delivered++
				ev := auditEvent(u.Name, q, rel, seg)
				ev.TraceID = traceID
				if ev.Outcome == audit.OutcomeRaw {
					metricReleases.With("allow").Inc()
					decisionClass = "allow"
				} else {
					metricReleases.With("abstract").Inc()
					if decisionClass != "allow" {
						decisionClass = "abstract"
					}
				}
				for _, id := range decisions[i].Matched {
					matched[id] = true
				}
				espan.AddEvent("release.decision",
					trace.String("outcome", ev.Outcome.String()),
					trace.String("rules", strings.Join(decisions[i].Matched, ",")),
					trace.Bool("cached", decisions[i].Cached),
					trace.String("location_granularity", rel.Location.Granularity.String()),
					trace.String("time_granularity", rel.TimeGranularity.String()))
				s.trail.Record(ev)
			}
		}
		if delivered == 0 {
			metricReleases.With("deny").Inc()
			s.trail.Record(audit.Event{
				Contributor: seg.Contributor, Consumer: u.Name, Query: q.String(),
				SpanStart: seg.StartTime(), SpanEnd: seg.EndTime(),
				Outcome: audit.OutcomeWithheld, TraceID: traceID,
			})
		}
		matchedIDs := make([]string, 0, len(matched))
		for id := range matched {
			matchedIDs = append(matchedIDs, id)
		}
		sort.Strings(matchedIDs)
		espan.SetAttr(trace.String("decision", decisionClass),
			trace.String("rules_matched", strings.Join(matchedIDs, ",")),
			trace.Int("releases", delivered))
		stopEval(nil)
	}
	return out, nil
}

// auditEvent classifies one delivered release for the owner's audit trail:
// raw when every dimension flowed at full fidelity — all stored channels
// the consumer asked for, exact coordinates, exact timestamps — and
// abstracted when enforcement held anything back.
func auditEvent(consumer string, q *query.Query, rel *abstraction.Release, seg *wavesegment.Segment) audit.Event {
	e := audit.Event{
		Contributor: seg.Contributor, Consumer: consumer, Query: q.String(),
		SpanStart: rel.Start, SpanEnd: rel.End,
		Outcome: audit.OutcomeAbstracted,
	}
	if rel.Segment != nil {
		e.Channels = append([]string(nil), rel.Segment.Channels...)
	}
	for _, c := range rel.Contexts {
		e.Contexts = append(e.Contexts, c.Context)
	}
	// Channels the consumer could at most have received: the stored ones,
	// narrowed by their own channel filter (a voluntary projection, not an
	// enforcement effect).
	expected := seg.Channels
	if len(q.Channels) > 0 {
		if p := seg.Project(rules.ExpandSensorNames(q.Channels)); p != nil {
			expected = p.Channels
		}
	}
	if rel.Segment != nil &&
		len(rel.Segment.Channels) == len(expected) &&
		rel.Location.Granularity == geo.LocCoordinates &&
		rel.TimeGranularity == timeutil.GranMillisecond {
		e.Outcome = audit.OutcomeRaw
	}
	return e
}

// Audit returns the contributor's access trail, newest first.
func (s *Service) Audit(key auth.APIKey, f audit.Filter) ([]audit.Event, error) {
	u, err := s.authenticate(key, auth.RoleContributor)
	if err != nil {
		return nil, err
	}
	f.Contributor = u.Name
	return s.trail.Events(f), nil
}

// AuditSummary aggregates the contributor's trail per consumer.
func (s *Service) AuditSummary(key auth.APIKey) ([]audit.ConsumerSummary, error) {
	u, err := s.authenticate(key, auth.RoleContributor)
	if err != nil {
		return nil, err
	}
	return s.trail.Summarize(u.Name), nil
}

// postFilter applies the query's channel projection and context filter to a
// release. Returns nil when nothing relevant remains.
func postFilter(rel *abstraction.Release, q *query.Query) *abstraction.Release {
	if len(q.Channels) > 0 && rel.Segment != nil {
		rel.Segment = rel.Segment.Project(rules.ExpandSensorNames(q.Channels))
	}
	if len(q.Contexts) > 0 {
		match := false
		for _, want := range q.Contexts {
			for _, have := range rel.Contexts {
				if strings.EqualFold(want, have.Context) {
					match = true
					break
				}
			}
		}
		if !match {
			return nil
		}
	}
	if rel.Empty() {
		return nil
	}
	return rel
}

// QueryOwn lets a contributor review their own raw data (the paper's
// web-UI "view their own data" path); no enforcement applies.
func (s *Service) QueryOwn(key auth.APIKey, q *query.Query) ([]*wavesegment.Segment, error) {
	u, err := s.authenticate(key, auth.RoleContributor)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	sq := q.Storage()
	sq.Contributor = u.Name // owners see only their own data
	results, err := s.store.Scan(sq)
	if err != nil {
		return nil, err
	}
	out := make([]*wavesegment.Segment, len(results))
	for i, r := range results {
		out[i] = r.Segment
	}
	return out, nil
}

// RulesFor returns the compiled rule engine for a contributor; the phone
// simulator uses this for privacy-rule-aware collection (§5.3), and tests
// probe it directly. Returns nil when the contributor has no rules yet.
func (s *Service) RulesFor(key auth.APIKey) (*rules.Engine, error) {
	u, err := s.authenticate(key, auth.RoleContributor)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, err := s.stateLocked(u.Name)
	if err != nil {
		return nil, err
	}
	return st.engine, nil
}

// RuleIndexStats reports every contributor's compiled-index state, keyed
// by contributor name, for the /debug/ruleindex endpoint and consumercli
// rulestats. Contributors without rules are omitted.
func (s *Service) RuleIndexStats() map[string]ruleindex.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]ruleindex.Stats)
	for name, st := range s.contributors {
		if st.index != nil {
			out[name] = st.index.Stats()
		}
	}
	return out
}

// SegmentCount reports the number of stored records (benchmark support).
func (s *Service) SegmentCount() int { return s.store.Count() }

// Recommend mines the contributor's stored data for privacy-rule
// suggestions (the §6 review step, automated): sensitive contexts that
// concentrate in identifiable situations or labeled places.
func (s *Service) Recommend(key auth.APIKey, opts recommend.Options) ([]recommend.Suggestion, error) {
	u, err := s.authenticate(key, auth.RoleContributor)
	if err != nil {
		return nil, err
	}
	results, err := s.store.ScanRefs(storage.Query{Contributor: u.Name})
	if err != nil {
		return nil, err
	}
	segs := make([]*wavesegment.Segment, len(results))
	for i, r := range results {
		segs[i] = r.Segment
	}
	if opts.Gazetteer == nil {
		s.mu.RLock()
		if st, err := s.stateLocked(u.Name); err == nil {
			opts.Gazetteer = st.gazetteer
		}
		s.mu.RUnlock()
	}
	return recommend.Analyze(segs, opts), nil
}
