// Package clean shows the sanctioned persistence shapes the atomicwrite
// analyzer must accept.
package clean

import (
	"os"

	"sensorsafe/internal/resilience"
)

func saveState(path string, data []byte) error {
	return resilience.WriteFileAtomic(path, data, 0o600)
}

// WriteFileAtomic is the one function name allowed to touch the raw API:
// an atomic-write helper is by definition implemented in terms of it.
func WriteFileAtomic(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600)
}

// appendLog opens for append; only WriteFile and Create are audited.
func appendLog(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o600)
}

// flushSegment is the segstore segment-writer discipline: stream into a
// .tmp name (OpenFile is not audited — append logs and temp files need
// it), fsync, then rename into place.
func flushSegment(path string, data []byte) error {
	f, err := os.OpenFile(path+".tmp", os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}
