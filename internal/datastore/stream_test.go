package datastore

import (
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/stream"
	"sensorsafe/internal/wavesegment"
)

// TestStreamDeliversUploadThroughRules is the end-to-end happy path: a
// consumer subscribed before an upload receives the post-merge segment
// with the contributor's rules applied.
func TestStreamDeliversUploadThroughRules(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	info, err := s.Subscribe(bob.Key, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 2)); err != nil {
		t.Fatal(err)
	}
	b, err := s.StreamNext(bob.Key, info.ID, info.Cursor, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 1 || b.Events[0].Kind != stream.KindData {
		t.Fatalf("events = %+v", b.Events)
	}
	rel := b.Events[0].Releases[0]
	if rel.Segment == nil || rel.Segment.NumSamples() != 128 {
		t.Fatalf("release = %+v", rel)
	}
	// Auth boundaries.
	if _, err := s.Subscribe(alice.Key, "alice", nil); err == nil {
		t.Error("contributor key must not open a consumer subscription")
	}
	if _, err := s.StreamNext(alice.Key, info.ID, "", 0); err == nil {
		t.Error("contributor key must not poll")
	}
	if _, err := s.Subscribe(bob.Key, "nobody", nil); err == nil {
		t.Error("subscribing to an unknown contributor must fail")
	}
}

// TestStreamRuleChangeMidStream drives the rule-edit scenarios from the
// issue: each case uploads under an initial rule set, delivers once, flips
// the rules, uploads again, and checks the next delivery reflects the new
// rules.
func TestStreamRuleChangeMidStream(t *testing.T) {
	cases := []struct {
		name   string
		before string
		after  string
		check  func(t *testing.T, b stream.Batch)
	}{
		{
			name:   "allow then deny suppresses",
			before: `[{"Action":"Allow"}]`,
			after:  `[{"Action":"Deny"}]`,
			check: func(t *testing.T, b stream.Batch) {
				if len(b.Events) != 0 {
					t.Fatalf("post-deny delivery leaked: %+v", b.Events)
				}
				if b.Cursor != "2" {
					t.Fatalf("cursor must advance past suppressed segment, got %s", b.Cursor)
				}
			},
		},
		{
			name:   "allow then city-level location",
			before: `[{"Action":"Allow"}]`,
			after: `[{"Action":"Allow"},
			         {"Action":{"Abstraction":{"Location":"City"}}}]`,
			check: func(t *testing.T, b stream.Batch) {
				if len(b.Events) != 1 || len(b.Events[0].Releases) == 0 {
					t.Fatalf("events = %+v", b.Events)
				}
				for _, rel := range b.Events[0].Releases {
					if rel.Location.Granularity != geo.LocCity || rel.Location.Point != nil {
						t.Fatalf("location not clamped to city: %+v", rel.Location)
					}
				}
			},
		},
		{
			name:   "smoking closure strips respiration",
			before: `[{"Action":"Allow"}]`,
			after: `[{"Action":"Allow"},
			         {"Action":{"Abstraction":{"Smoking":"NotShared"}}}]`,
			check: func(t *testing.T, b stream.Batch) {
				if len(b.Events) != 1 {
					t.Fatalf("events = %+v", b.Events)
				}
				for _, rel := range b.Events[0].Releases {
					if rel.Segment == nil {
						continue
					}
					if rel.Segment.HasChannel(wavesegment.ChannelRespiration) {
						t.Fatal("respiration leaked while smoking is hidden (dependency closure)")
					}
					if !rel.Segment.HasChannel(wavesegment.ChannelECG) {
						t.Fatal("ECG should survive the smoking closure")
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newService(t, Options{})
			alice, bob := setupAliceBob(t, s)
			if err := s.SetRules(alice.Key, []byte(tc.before)); err != nil {
				t.Fatal(err)
			}
			info, err := s.Subscribe(bob.Key, "alice", nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Upload(alice.Key, packetStream("alice", t0, 1)); err != nil {
				t.Fatal(err)
			}
			b, err := s.StreamNext(bob.Key, info.ID, info.Cursor, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if len(b.Events) != 1 || b.Events[0].RuleVersion == 0 {
				t.Fatalf("pre-flip delivery = %+v", b.Events)
			}
			preVersion := b.Events[0].RuleVersion

			if err := s.SetRules(alice.Key, []byte(tc.after)); err != nil {
				t.Fatal(err)
			}
			// Upload far enough ahead that the segment cannot coalesce
			// into the first record.
			if _, err := s.Upload(alice.Key, packetStream("alice", t0.Add(time.Hour), 1)); err != nil {
				t.Fatal(err)
			}
			b2, err := s.StreamNext(bob.Key, info.ID, b.Cursor, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range b2.Events {
				if ev.RuleVersion <= preVersion {
					t.Errorf("rule version not bumped: %d <= %d", ev.RuleVersion, preVersion)
				}
			}
			tc.check(t, b2)
		})
	}
}

// TestStreamRefiltersBufferedSegments uploads while one rule set is live,
// then flips the rules BEFORE the consumer polls: the buffered, undelivered
// segment must be filtered by the rules in force at delivery time.
func TestStreamRefiltersBufferedSegments(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	info, err := s.Subscribe(bob.Key, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 1)); err != nil {
		t.Fatal(err)
	}
	// Revocation lands while the segment sits undelivered in the buffer.
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Deny"}]`)); err != nil {
		t.Fatal(err)
	}
	b, err := s.StreamNext(bob.Key, info.ID, info.Cursor, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 0 {
		t.Fatalf("buffered segment leaked after revocation: %+v", b.Events)
	}
}

// TestStreamSubscriptionsSurviveRestart checks the durable-cursor contract:
// registrations and acked cursors persist in state.json; segments that were
// buffered but unacked at shutdown surface as a gap after reopen.
func TestStreamSubscriptionsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s := newService(t, Options{Dir: dir})
	alice, bob := setupAliceBob(t, s)
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	info, err := s.Subscribe(bob.Key, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 1)); err != nil {
		t.Fatal(err)
	}
	b, err := s.StreamNext(bob.Key, info.ID, info.Cursor, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 1 {
		t.Fatalf("events = %+v", b.Events)
	}
	if err := s.StreamAck(bob.Key, info.ID, b.Cursor); err != nil {
		t.Fatal(err)
	}
	// One more upload the consumer never sees before the store goes down.
	if _, err := s.Upload(alice.Key, packetStream("alice", t0.Add(time.Hour), 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newService(t, Options{Dir: dir})
	again, err := s2.Subscribe(bob.Key, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Resumed || again.ID != info.ID || again.Cursor != b.Cursor {
		t.Fatalf("restored subscription = %+v (want resumed at cursor %s)", again, b.Cursor)
	}
	b2, err := s2.StreamNext(bob.Key, again.ID, again.Cursor, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Events) != 1 || b2.Events[0].Kind != stream.KindGap || b2.Events[0].Dropped != 1 {
		t.Fatalf("restart gap = %+v", b2.Events)
	}
}
