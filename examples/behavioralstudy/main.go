// Behavioral study: the paper's §6 scenario at full scale.
//
// Bob coordinates a stress study with 20 participants whose data lives on
// four institutional remote data stores (the IRB requires each institution
// to host its own participants — §1). Every participant wears a chest band
// and carries a phone through a scripted day. Some participants, like
// Alice, are uncomfortable sharing stress while driving and add a
// restriction rule. Bob uses the broker to search for participants whose
// rules share enough data for his driving-stress analysis, saves the list,
// and downloads their data directly from the stores.
//
// Run with: go run ./examples/behavioralstudy
package main

import (
	"fmt"
	"log"
	"time"

	"sensorsafe/internal/broker"
	"sensorsafe/internal/core"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
)

const participants = 20

func main() {
	net := core.NewNetwork()
	defer net.Close()

	// Four institutional stores (the multi-institution IRB setting).
	institutions := []string{"ucla-store", "osu-store", "memphis-store", "cmu-store"}
	for _, name := range institutions {
		if _, err := net.AddStore(name, ""); err != nil {
			log.Fatal(err)
		}
	}

	if err := net.Broker.CreateStudy("StressStudy"); err != nil {
		log.Fatal(err)
	}

	// Enroll participants. Everyone shares with the study; participants
	// with an odd index are, like Alice, uncomfortable sharing stress
	// while driving and add the restriction.
	start := time.Date(2011, 2, 16, 8, 0, 0, 0, time.UTC)
	origin := geo.Point{Lat: 34.0250, Lon: -118.4950}
	restricted := 0
	for i := 0; i < participants; i++ {
		name := fmt.Sprintf("participant-%02d", i)
		c, err := net.NewContributor(institutions[i%len(institutions)], name)
		if err != nil {
			log.Fatal(err)
		}
		ruleJSON := `[{"Group": ["StressStudy"], "Action": "Allow"}]`
		if i%2 == 1 {
			restricted++
			ruleJSON = `[
			  {"Group": ["StressStudy"], "Action": "Allow"},
			  {"Context": ["Drive"], "Action": {"Abstraction": {"Stress": "NotShared"}}}
			]`
		}
		if err := c.SetRules(ruleJSON); err != nil {
			log.Fatal(err)
		}
		if err := c.AssignConsumerGroups("Bob", []string{"StressStudy"}); err != nil {
			log.Fatal(err)
		}

		// Each participant records a miniature day: calm desk work, a
		// stressful drive, a calm walk.
		day := &sensors.Scenario{
			Start: start, Origin: origin, Seed: int64(i),
			Phases: []sensors.Phase{
				{Duration: 90 * time.Second, Activity: rules.CtxStill},
				{Duration: 90 * time.Second, Activity: rules.CtxDrive, Stressed: true, Heading: float64(i * 17)},
				{Duration: 60 * time.Second, Activity: rules.CtxWalk, Heading: float64(i * 31)},
			},
		}
		if _, err := c.RecordDay(day, false); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("enrolled %d participants across %d institutional stores (%d restrict driving stress)\n",
		participants, len(institutions), restricted)

	// Bob joins the study and searches for participants who share stress
	// data *while driving* — the broker evaluates every replicated rule
	// set without touching any sensor data.
	bob, err := net.NewConsumer("Bob")
	if err != nil {
		log.Fatal(err)
	}
	if err := bob.JoinStudy("StressStudy"); err != nil {
		log.Fatal(err)
	}
	match, err := bob.Search(&broker.SearchQuery{
		Sensors:        []string{"ECG", "Respiration"},
		ActiveContexts: []string{rules.CtxDrive},
		Reference:      start,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broker search: %d/%d participants share ECG+Respiration while driving\n",
		len(match), participants)
	if err := bob.SaveList("driving-stress-cohort", match); err != nil {
		log.Fatal(err)
	}

	// Bob downloads the cohort's driving spans directly from the stores.
	cohort, err := bob.List("driving-stress-cohort")
	if err != nil {
		log.Fatal(err)
	}
	rels, err := bob.QueryMany(cohort, &query.Query{Contexts: []string{rules.CtxDrive}})
	if err != nil {
		log.Fatal(err)
	}
	stressSpans, samples := 0, 0
	for _, rel := range rels {
		for _, c := range rel.Contexts {
			if c.Context == rules.CtxStressed {
				stressSpans++
			}
		}
		if rel.Segment != nil {
			samples += rel.Segment.NumSamples()
		}
	}
	fmt.Printf("downloaded %d driving release spans (%d raw samples); %d carry stress labels\n",
		len(rels), samples, stressSpans)

	// Control: querying a restricted participant yields driving spans
	// without stress information.
	ctrl, err := bob.Query("participant-01", &query.Query{Contexts: []string{rules.CtxDrive}})
	if err != nil {
		log.Fatal(err)
	}
	leaked := 0
	for _, rel := range ctrl {
		for _, c := range rel.Contexts {
			if c.Context == rules.CtxStressed || c.Context == rules.CtxNotStressed {
				leaked++
			}
		}
		if rel.Segment != nil && (rel.Segment.HasChannel("ECG") || rel.Segment.HasChannel("Respiration")) {
			leaked++
		}
	}
	fmt.Printf("control (restricted participant-01): %d driving spans, %d stress leaks\n",
		len(ctrl), leaked)
}
