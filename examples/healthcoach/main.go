// Health coach: the paper's §6 personal-health-care scenario.
//
// Alice shares her daily activity with a personal coach (Philips
// DirectLife-style). She is comfortable sharing activity *levels* but not
// raw accelerometer traces, not anything recorded at home, and no location
// finer than city. The coach receives Moving/NotMoving labels with
// city-level location — the dependency closure guarantees the raw
// accelerometer never flows once activity is abstracted. (Time stays at
// full precision here so the coach can total her active minutes; adding
// "Time": "Hour" to the abstraction would deliberately destroy that.)
//
// Run with: go run ./examples/healthcoach
package main

import (
	"fmt"
	"log"
	"time"

	"sensorsafe/internal/core"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
)

func main() {
	net := core.NewNetwork()
	defer net.Close()
	if _, err := net.AddStore("alice-store", ""); err != nil {
		log.Fatal(err)
	}
	alice, err := net.NewContributor("alice-store", "alice")
	if err != nil {
		log.Fatal(err)
	}

	home := geo.Point{Lat: 34.0250, Lon: -118.4950}
	homeRect, _ := geo.NewRect(
		geo.Point{Lat: home.Lat - 0.0002, Lon: home.Lon - 0.0002},
		geo.Point{Lat: home.Lat + 0.0002, Lon: home.Lon + 0.0002})
	if err := alice.DefinePlace("home", geo.Region{Rect: homeRect}); err != nil {
		log.Fatal(err)
	}

	// Coach sees binary activity with city-level location and hour-level
	// time; nothing at home; nobody else sees anything.
	err = alice.SetRules(`[
	  { "Consumer": ["Coach"], "Sensor": ["Accelerometer"], "Action": "Allow" },
	  { "Consumer": ["Coach"],
	    "Action": { "Abstraction": { "Activity": "Move/Not Move",
	                                 "Location": "City" } } },
	  { "LocationLabel": ["home"], "Action": "Deny" }
	]`)
	if err != nil {
		log.Fatal(err)
	}

	// Alice's afternoon: an hour-scaled mix of sitting at home, a run in
	// the park, a walk, and more sitting (away from home).
	day := &sensors.Scenario{
		Start: time.Date(2011, 2, 16, 14, 0, 0, 0, time.UTC), Origin: home, Seed: 9,
		Phases: []sensors.Phase{
			{Duration: 2 * time.Minute, Activity: rules.CtxStill},             // at home
			{Duration: 2 * time.Minute, Activity: rules.CtxRun, Heading: 40},  // run (leaves home)
			{Duration: 2 * time.Minute, Activity: rules.CtxWalk, Heading: 40}, // walk
			{Duration: 2 * time.Minute, Activity: rules.CtxStill},             // bench rest
		},
	}
	if _, err := alice.RecordDay(day, false); err != nil {
		log.Fatal(err)
	}

	coach, err := net.NewConsumer("Coach")
	if err != nil {
		log.Fatal(err)
	}
	rels, err := coach.Query("alice", &query.Query{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("coach receives %d release span(s)\n\n", len(rels))
	var moving, notMoving time.Duration
	rawLeaks, fineLocation := 0, 0
	seen := make(map[string]bool) // chest-band and phone packets repeat the same spans
	for _, rel := range rels {
		if rel.Segment != nil {
			rawLeaks++ // raw channels must never flow at binary activity
		}
		if rel.Location.Point != nil {
			fineLocation++
		}
		for _, c := range rel.Contexts {
			key := fmt.Sprintf("%s/%d/%d", c.Context, c.Start.UnixNano(), c.End.UnixNano())
			if seen[key] {
				continue
			}
			seen[key] = true
			d := c.End.Sub(c.Start)
			switch c.Context {
			case rules.CtxMoving:
				moving += d
			case rules.CtxNotMoving:
				notMoving += d
			}
		}
	}
	fmt.Printf("activity summary the coach can compute:\n")
	fmt.Printf("  moving:     %v\n", moving.Round(time.Second))
	fmt.Printf("  not moving: %v\n", notMoving.Round(time.Second))
	if len(rels) > 0 {
		fmt.Printf("  location granularity: %v (e.g. %q)\n",
			rels[0].Location.Granularity, rels[0].Location.Text)
		fmt.Printf("  time granularity:     %v\n", rels[0].TimeGranularity)
	}
	fmt.Printf("\nprivacy checks: raw-channel leaks=%d, fine-location leaks=%d\n", rawLeaks, fineLocation)
	fmt.Println("(the home phase is absent entirely: the deny rule removed it)")
}
