package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/datastore"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/stream"
)

// Live-sharing transport. Two shapes over the same hub:
//
//   - POST /api/stream/next — long-poll: blocks up to waitMs for events,
//     returns a Batch whose cursor acknowledges (and frees) everything in
//     earlier batches the caller passed back.
//   - POST /api/stream/live — server-sent events: one POST (the key stays
//     out of URLs, per §5.4) holding the connection open; each event is a
//     JSON-encoded stream.Event frame with its seq as the SSE id, so a
//     reconnecting client resumes from the last id it saw.

// maxStreamWait bounds a single long-poll round trip.
const maxStreamWait = 60 * time.Second

type streamSubscribeReq struct {
	Key         auth.APIKey `json:"key"`
	Contributor string      `json:"contributor"`
	Channels    []string    `json:"channels,omitempty"`
}

type streamNextReq struct {
	Key    auth.APIKey `json:"key"`
	ID     string      `json:"id"`
	Cursor string      `json:"cursor,omitempty"`
	WaitMs int         `json:"waitMs,omitempty"`
}

type streamAckReq struct {
	Key    auth.APIKey `json:"key"`
	ID     string      `json:"id"`
	Cursor string      `json:"cursor"`
}

type streamIDReq struct {
	Key auth.APIKey `json:"key"`
	ID  string      `json:"id"`
}

func clampWait(ms int) time.Duration {
	if ms <= 0 {
		return 0
	}
	d := time.Duration(ms) * time.Millisecond
	if d > maxStreamWait {
		return maxStreamWait
	}
	return d
}

// registerStreamAPI mounts the live-sharing endpoints on the store mux.
func registerStreamAPI(mux *http.ServeMux, svc *datastore.Service) {
	mux.HandleFunc("/api/stream/subscribe", post(func(ctx context.Context, r *streamSubscribeReq) (stream.SubInfo, error) {
		return svc.Subscribe(r.Key, r.Contributor, r.Channels)
	}))

	mux.HandleFunc("/api/stream/next", post(func(ctx context.Context, r *streamNextReq) (stream.Batch, error) {
		_, span, stop := obs.Span(ctx, "stream.deliver")
		batch, err := svc.StreamNext(r.Key, r.ID, r.Cursor, clampWait(r.WaitMs))
		span.SetAttr(trace.Int("events", len(batch.Events)))
		stop(err)
		return batch, err
	}))

	mux.HandleFunc("/api/stream/ack", post(func(ctx context.Context, r *streamAckReq) (okResp, error) {
		if err := svc.StreamAck(r.Key, r.ID, r.Cursor); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/stream/unsubscribe", post(func(ctx context.Context, r *streamIDReq) (okResp, error) {
		if err := svc.Unsubscribe(r.Key, r.ID); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/stream/live", func(w http.ResponseWriter, r *http.Request) {
		serveSSE(w, r, svc)
	})
}

// ssePollWait is how long each internal hub poll blocks between checks of
// the client connection; short enough that a gone client is noticed fast.
const ssePollWait = 15 * time.Second

// serveSSE streams events until the client disconnects or the hub shuts
// down. Events the client has received are acknowledged on the next hub
// poll (batch cursors are passed back in), so a client that vanishes
// mid-stream resumes from its last delivered frame.
func serveSSE(w http.ResponseWriter, r *http.Request, svc *datastore.Service) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, fmt.Errorf("%w: %s", errMethodNotAllowed, r.Method))
		return
	}
	var req streamNextReq
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("httpapi: bad request JSON: %w", err))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("httpapi: response writer does not support streaming"))
		return
	}
	// Validate credentials with a non-blocking poll before committing to
	// the event-stream content type.
	cursor := req.Cursor
	first, err := svc.StreamNext(req.Key, req.ID, cursor, 0)
	if err != nil {
		writeError(w, err)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// The servers deliberately run without a global WriteTimeout (it
	// would cap every SSE stream's lifetime); instead each poll iteration
	// rolls a per-frame write deadline forward, so a client that stops
	// reading is disconnected within one deadline instead of pinning the
	// connection forever. SetWriteDeadline errors are ignored: test
	// recorders don't implement it, real server connections do.
	rc := http.NewResponseController(w)
	ctx := r.Context()
	batch := first
	for {
		_ = rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
		for _, ev := range batch.Events {
			if err := writeSSEEvent(w, ev); err != nil {
				return
			}
		}
		if len(batch.Events) > 0 {
			flusher.Flush()
			for _, ev := range batch.Events {
				if ev.Kind == stream.KindBye {
					return
				}
			}
		} else {
			// Keep-alive comment so proxies and clients see a live stream.
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			flusher.Flush()
		}
		cursor = batch.Cursor
		if ctx.Err() != nil {
			return
		}
		batch, err = svc.StreamNext(req.Key, req.ID, cursor, ssePollWait)
		if err != nil {
			return
		}
	}
}

// writeSSEEvent emits one stream.Event as an SSE frame:
//
//	id: <seq>
//	event: <kind>
//	data: <event JSON>
func writeSSEEvent(w http.ResponseWriter, ev stream.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
	return err
}
