package rules

import (
	"testing"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/timeutil"
)

// fig4JSON is the paper's Fig. 4 example verbatim (modulo the paper's
// single-quote typography): "Share all data collected at UCLA with Bob but
// do not share stress information while I am in conversation at UCLA on
// Weekdays from 9am to 6pm."
const fig4JSON = `[
  { "Consumer": ["Bob"],
    "LocationLabel": ["UCLA"],
    "Action": "Allow"
  },
  { "Consumer": ["Bob"],
    "LocationLabel": ["UCLA"],
    "RepeatTime": { "Day": ["Mon", "Tue", "Wed", "Thu", "Fri"],
                    "HourMin": ["9:00am", "6:00pm"]},
    "Context": ["Conversation"],
    "Action": { "Abstraction": { "Stress": "NotShared" } }
  }
]`

func TestFig4RoundTrip(t *testing.T) {
	rs, err := UnmarshalRuleSet([]byte(fig4JSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rs))
	}

	r1, r2 := rs[0], rs[1]
	if r1.Action.Kind != ActionAllow || len(r1.Consumers) != 1 || r1.Consumers[0] != "Bob" {
		t.Errorf("rule 1 = %+v", r1)
	}
	if len(r1.LocationLabels) != 1 || r1.LocationLabels[0] != "UCLA" {
		t.Errorf("rule 1 labels = %v", r1.LocationLabels)
	}
	if r2.Action.Kind != ActionAbstract {
		t.Fatalf("rule 2 kind = %v", r2.Action.Kind)
	}
	if lvl, ok := r2.Action.Abstraction.Contexts[CategoryStress]; !ok || lvl != LevelNotShared {
		t.Errorf("rule 2 abstraction = %+v", r2.Action.Abstraction)
	}
	if len(r2.RepeatTimes) != 1 {
		t.Fatalf("rule 2 repeat times = %v", r2.RepeatTimes)
	}
	wed := time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC)
	sat := time.Date(2011, 2, 19, 10, 0, 0, 0, time.UTC)
	if !r2.RepeatTimes[0].Contains(wed) || r2.RepeatTimes[0].Contains(sat) {
		t.Error("rule 2 repeat window wrong")
	}
	if len(r2.Contexts) != 1 || r2.Contexts[0] != CtxConversation {
		t.Errorf("rule 2 contexts = %v", r2.Contexts)
	}

	// Round trip.
	data, err := MarshalRuleSet(rs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRuleSet(data)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, data)
	}
	if len(back) != 2 || back[1].Action.Abstraction.Contexts[CategoryStress] != LevelNotShared {
		t.Errorf("round trip lost information: %+v", back)
	}
	if !back[1].RepeatTimes[0].Contains(wed) || back[1].RepeatTimes[0].Contains(sat) {
		t.Error("round-tripped repeat window wrong")
	}
}

func TestUnmarshalRuleScalarsAndSingleObjects(t *testing.T) {
	// Scalar condition values and single-object RepeatTime/TimeRange.
	in := `{
	  "Consumer": "Bob",
	  "Sensor": "Accelerometer",
	  "TimeRange": {"Start": "2011-02-01T00:00:00Z", "End": "2011-03-01T00:00:00Z"},
	  "Action": "Allow"
	}`
	r, err := UnmarshalRule([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Consumers) != 1 || r.Consumers[0] != "Bob" {
		t.Errorf("Consumers = %v", r.Consumers)
	}
	// Accelerometer expands to the axis triple.
	if len(r.Sensors) != 3 || r.Sensors[0] != "AccelX" {
		t.Errorf("Sensors = %v", r.Sensors)
	}
	if len(r.TimeRanges) != 1 || r.TimeRanges[0].Duration() != 28*24*time.Hour {
		t.Errorf("TimeRanges = %v", r.TimeRanges)
	}
}

func TestUnmarshalRuleRegionAndGPS(t *testing.T) {
	in := `{
	  "Region": {"rect": {"minLat": 34, "minLon": -119, "maxLat": 35, "maxLon": -118}},
	  "Sensor": ["GPS", "ECG"],
	  "Action": "Deny"
	}`
	r, err := UnmarshalRule([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Regions) != 1 || !r.Regions[0].Contains(geo.Point{Lat: 34.5, Lon: -118.5}) {
		t.Errorf("Regions = %+v", r.Regions)
	}
	want := []string{"Latitude", "Longitude", "ECG"}
	if len(r.Sensors) != 3 {
		t.Fatalf("Sensors = %v", r.Sensors)
	}
	for i, s := range want {
		if r.Sensors[i] != s {
			t.Errorf("Sensors[%d] = %q, want %q", i, r.Sensors[i], s)
		}
	}
}

func TestUnmarshalRuleAbstractionAllDimensions(t *testing.T) {
	in := `{
	  "Consumer": ["coach"],
	  "Action": { "Abstraction": {
	    "Location": "City",
	    "Time": "Hour",
	    "Activity": "Move/Not Move",
	    "Stress": "Stressed/Not Stressed",
	    "Smoking": "NotShared",
	    "Conversation": "Conversation/Not Conversation"
	  }}
	}`
	r, err := UnmarshalRule([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	spec := r.Action.Abstraction
	if spec.Location == nil || *spec.Location != geo.LocCity {
		t.Errorf("Location = %v", spec.Location)
	}
	if spec.Time == nil || *spec.Time != timeutil.GranHour {
		t.Errorf("Time = %v", spec.Time)
	}
	want := map[Category]Level{
		CategoryActivity: LevelBinary, CategoryStress: LevelBinary,
		CategorySmoking: LevelNotShared, CategoryConversation: LevelBinary,
	}
	for cat, lvl := range want {
		if spec.Contexts[cat] != lvl {
			t.Errorf("Contexts[%s] = %v, want %v", cat, spec.Contexts[cat], lvl)
		}
	}
	// And back out.
	data, err := MarshalRule(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRule(data)
	if err != nil {
		t.Fatal(err)
	}
	if *back.Action.Abstraction.Location != geo.LocCity || back.Action.Abstraction.Contexts[CategorySmoking] != LevelNotShared {
		t.Errorf("round trip lost abstraction: %+v", back.Action.Abstraction)
	}
}

func TestUnmarshalRuleErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"Action": "Explode"}`,
		`{}`,
		`{"Action": {"Abstraction": {}}}`,
		`{"Action": {"Abstraction": {"Altitude": "Raw"}}}`,
		`{"Action": {"Abstraction": {"Stress": "Modes"}}}`,
		`{"Action": {"Abstraction": {"Location": "galaxy"}}}`,
		`{"Action": {"Abstraction": {"Time": "fortnight"}}}`,
		`{"Context": ["levitating"], "Action": "Allow"}`,
		`{"TimeRange": {"Start": "bogus"}, "Action": "Allow"}`,
		`{"TimeRange": {"Start": "2011-03-01T00:00:00Z", "End": "2011-02-01T00:00:00Z"}, "Action": "Allow"}`,
		`{"RepeatTime": {"Day": ["Funday"]}, "Action": "Allow"}`,
		`{"RepeatTime": {"HourMin": ["9:00am"]}, "Action": "Allow"}`,
		`{"Region": {"label": "nowhere"}, "Action": "Allow"}`,
		`{"Consumer": 42, "Action": "Allow"}`,
	}
	for _, in := range cases {
		if _, err := UnmarshalRule([]byte(in)); err == nil {
			t.Errorf("expected error for %s", in)
		}
	}
}

func TestUnmarshalRuleSetSingleObject(t *testing.T) {
	rs, err := UnmarshalRuleSet([]byte(`{"Action": "Allow"}`))
	if err != nil || len(rs) != 1 {
		t.Fatalf("single-object rule set: %v, %v", rs, err)
	}
	if _, err := UnmarshalRuleSet([]byte(`[{"Action": "Explode"}]`)); err == nil {
		t.Error("bad rule inside set should error")
	}
	if _, err := UnmarshalRuleSet([]byte(`"nope"`)); err == nil {
		t.Error("non-object rule set should error")
	}
}

func TestMarshalRuleRejectsInvalid(t *testing.T) {
	r := &Rule{Action: Action{Kind: ActionKind(9)}}
	if _, err := MarshalRule(r); err == nil {
		t.Error("invalid rule should not marshal")
	}
	if _, err := MarshalRuleSet([]*Rule{r}); err == nil {
		t.Error("invalid rule set should not marshal")
	}
}

func TestRuleValidate(t *testing.T) {
	valid := &Rule{ID: "r", Action: Allow()}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Rule{
		{Action: Action{Kind: ActionAllow, Abstraction: &AbstractionSpec{}}},
		{Action: Action{Kind: ActionAbstract}},
		{Action: Action{Kind: ActionAbstract, Abstraction: &AbstractionSpec{}}},
		{Contexts: []string{"levitating"}, Action: Allow()},
		{Sensors: []string{" "}, Action: Allow()},
		{LocationLabels: []string{""}, Action: Allow()},
		{Regions: []geo.Region{{Label: "x"}}, Action: Allow()},
		{Action: Action{Kind: ActionKind(7)}},
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, r)
		}
	}
	badLoc := geo.LocationGranularity(99)
	r := &Rule{Action: Abstract(AbstractionSpec{Location: &badLoc})}
	if err := r.Validate(); err == nil {
		t.Error("invalid location granularity should be rejected")
	}
	badTime := timeutil.Granularity(99)
	r = &Rule{Action: Abstract(AbstractionSpec{Time: &badTime})}
	if err := r.Validate(); err == nil {
		t.Error("invalid time granularity should be rejected")
	}
	r = &Rule{Action: Abstract(AbstractionSpec{Contexts: map[Category]Level{CategoryStress: LevelModes}})}
	if err := r.Validate(); err == nil {
		t.Error("Modes for Stress should be rejected")
	}
}

func TestRuleCloneIsDeep(t *testing.T) {
	loc := geo.LocCity
	r := &Rule{
		ID:        "r1",
		Consumers: []string{"Bob"},
		Sensors:   []string{"ECG"},
		Action:    Abstract(AbstractionSpec{Location: &loc, Contexts: map[Category]Level{CategoryStress: LevelBinary}}),
	}
	c := r.Clone()
	c.Consumers[0] = "Eve"
	c.Sensors[0] = "Respiration"
	*c.Action.Abstraction.Location = geo.LocCountry
	c.Action.Abstraction.Contexts[CategoryStress] = LevelNotShared
	if r.Consumers[0] != "Bob" || r.Sensors[0] != "ECG" ||
		*r.Action.Abstraction.Location != geo.LocCity ||
		r.Action.Abstraction.Contexts[CategoryStress] != LevelBinary {
		t.Error("Clone shares memory with original")
	}
}

func TestRuleGoverns(t *testing.T) {
	r := &Rule{Sensors: []string{"ECG", "Respiration"}, Action: Allow()}
	if !r.GovernsChannel("ECG") || !r.GovernsChannel("ecg") || r.GovernsChannel("AccelX") {
		t.Error("GovernsChannel wrong")
	}
	all := &Rule{Action: Allow()}
	if !all.GovernsAllChannels() || !all.GovernsChannel("anything") {
		t.Error("empty sensor condition should govern everything")
	}
	cats := r.GovernedCategories()
	// ECG+Respiration feed Stress, Smoking, Conversation.
	if len(cats) != 3 {
		t.Errorf("GovernedCategories = %v", cats)
	}
	if !r.CoversAllSensorsOf(CategorySmoking) {
		t.Error("ECG+Respiration covers all Smoking sensors (just Respiration)")
	}
	if r.CoversAllSensorsOf(CategoryStress) {
		t.Error("Stress also needs HeartRate; not fully covered")
	}
	if r.CoversAllSensorsOf(CategoryConversation) {
		t.Error("Conversation also needs Microphone; not fully covered")
	}
}
