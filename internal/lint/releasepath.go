package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// ReleasePath polices SensorSafe's core guarantee in the consumer-facing
// layers (internal/httpapi, internal/stream, internal/federation): raw
// wave segments reach a consumer only through the rule match → dependency
// closure → abstraction pipeline, i.e. wrapped in abstraction.Release
// values. Three checks, from coarse to fine:
//
//  1. Those packages must not import internal/storage at all — the raw
//     segment store is the datastore's private substrate.
//  2. They must not call raw storage accessors (datastore.Service.Storage,
//     or any method on storage.Store obtained indirectly).
//  3. Any *wavesegment.Segment value placed into a consumer-facing
//     response (struct types named *Resp/*Response/*Reply/*Event/*Batch/
//     *Result, or passed straight to writeJSON) must derive from
//     abstraction.Release.Segment — intraprocedural provenance tracking
//     through local assignments. The single sanctioned raw egress, the
//     owner-only /api/queryown handler, carries an //sslint:ignore
//     releasepath directive documenting why it is safe.
var ReleasePath = &Analyzer{
	Name: "releasepath",
	Doc:  "consumer-facing layers must ship wave segments only via the abstraction release pipeline",
	AppliesTo: func(modulePath, pkgPath string) bool {
		switch pkgPath {
		case modulePath + "/internal/httpapi",
			modulePath + "/internal/stream",
			modulePath + "/internal/federation":
			return true
		}
		return false
	},
	Run: runReleasePath,
}

var responseTypeRe = regexp.MustCompile(`(Resp|Response|Reply|Event|Batch|Result)$`)

func runReleasePath(pass *Pass) {
	storagePath := pass.Module.Path + "/internal/storage"
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == storagePath {
				pass.Reportf(imp.Pos(),
					"consumer-facing package imports %s; raw segment storage is private to the datastore", storagePath)
			}
		}
	}
	inspectFuncs(pass.Pkg, func(n ast.Node, _ *ast.FuncDecl) {
		if call, ok := n.(*ast.CallExpr); ok {
			checkRawAccessor(pass, call, storagePath)
		}
	})
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSegmentFlow(pass, fd)
		}
	}
}

// checkRawAccessor flags calls that reach the raw segment substrate.
func checkRawAccessor(pass *Pass, call *ast.CallExpr, storagePath string) {
	fn, ok := calleeObj(pass.Pkg, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == storagePath {
		pass.Reportf(call.Pos(),
			"call to storage.%s bypasses the abstraction release pipeline", fn.Name())
		return
	}
	if fn.Name() == "Storage" && fn.Pkg().Path() == pass.Module.Path+"/internal/datastore" {
		pass.Reportf(call.Pos(),
			"datastore.Storage() exposes the raw segment store; consumer-facing code must use the release pipeline (Query/abstraction.Release)")
	}
}

// checkSegmentFlow runs the intraprocedural provenance check of rule 3.
func checkSegmentFlow(pass *Pass, fd *ast.FuncDecl) {
	origins := collectOrigins(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CompositeLit:
			if !isResponseType(pass, pass.Pkg.Info.Types[node].Type) {
				return true
			}
			for _, elt := range node.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				checkSegmentValue(pass, origins, val, pass.Pkg.Info.Types[node].Type)
			}
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || i >= len(node.Rhs) {
					continue
				}
				owner := pass.Pkg.Info.Types[sel.X].Type
				if isResponseType(pass, owner) {
					checkSegmentValue(pass, origins, node.Rhs[i], owner)
				}
			}
		}
		return true
	})
}

// checkSegmentValue reports expr when it is segment-typed and its
// provenance is not the release pipeline.
func checkSegmentValue(pass *Pass, origins map[*types.Var][]ast.Expr, expr ast.Expr, sink types.Type) {
	t := pass.Pkg.Info.Types[expr].Type
	if !isSegmentType(pass, t) {
		return
	}
	if provenanceReleased(pass, origins, expr, make(map[*types.Var]bool)) {
		return
	}
	pass.Reportf(expr.Pos(),
		"raw %s flows into consumer response %s without passing the abstraction release pipeline; derive it from abstraction.Release.Segment",
		typeShort(t), typeShort(sink))
}

// collectOrigins maps each local variable to the expressions assigned to
// it anywhere in the function (:=, =, append, range sources).
func collectOrigins(pass *Pass, fd *ast.FuncDecl) map[*types.Var][]ast.Expr {
	origins := make(map[*types.Var][]ast.Expr)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj, _ := pass.Pkg.Info.Defs[id].(*types.Var)
		if obj == nil {
			obj, _ = pass.Pkg.Info.Uses[id].(*types.Var)
		}
		if obj != nil {
			origins[obj] = append(origins[obj], rhs)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if len(node.Lhs) == len(node.Rhs) {
				for i := range node.Lhs {
					record(node.Lhs[i], node.Rhs[i])
				}
			}
		case *ast.RangeStmt:
			if node.Value != nil {
				record(node.Value, node.X)
			}
		}
		return true
	})
	return origins
}

// provenanceReleased decides whether expr's value came from the
// abstraction release pipeline. Conservative: anything not provably
// released (calls, parameters, field reads) counts as raw. visited breaks
// self-referential assignment chains (x = append(x, ...)); a variable
// already on the path contributes nothing new and counts as neutral.
func provenanceReleased(pass *Pass, origins map[*types.Var][]ast.Expr, expr ast.Expr, visited map[*types.Var]bool) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		// rel.Segment on abstraction.Release is the sanctioned source.
		if e.Sel.Name == "Segment" && isReleaseType(pass, pass.Pkg.Info.Types[e.X].Type) {
			return true
		}
		return false
	case *ast.Ident:
		v := identVar(pass, e)
		if v == nil {
			return false
		}
		if visited[v] {
			return true
		}
		visited[v] = true
		srcs := origins[v]
		if len(srcs) == 0 {
			return false
		}
		for _, src := range srcs {
			if !provenanceReleased(pass, origins, src, visited) {
				return false
			}
		}
		return true
	case *ast.IndexExpr:
		return provenanceReleased(pass, origins, e.X, visited)
	case *ast.SliceExpr:
		return provenanceReleased(pass, origins, e.X, visited)
	case *ast.UnaryExpr:
		return provenanceReleased(pass, origins, e.X, visited)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if !provenanceReleased(pass, origins, elt, visited) {
				return false
			}
		}
		return len(e.Elts) > 0
	case *ast.CallExpr:
		// append(dst, srcs...) is released iff every appended value is.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			for _, arg := range e.Args {
				if !provenanceReleased(pass, origins, arg, visited) {
					return false
				}
			}
			return true
		}
		return false
	}
	return false
}

func identVar(pass *Pass, id *ast.Ident) *types.Var {
	if v, ok := pass.Pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := pass.Pkg.Info.Defs[id].(*types.Var)
	return v
}

// isSegmentType reports whether t is *wavesegment.Segment or a slice of
// (pointers to) it.
func isSegmentType(pass *Pass, t types.Type) bool {
	switch tt := t.(type) {
	case *types.Slice:
		return isSegmentType(pass, tt.Elem())
	case *types.Pointer:
		return isSegmentType(pass, tt.Elem())
	case *types.Named:
		obj := tt.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == pass.Module.Path+"/internal/wavesegment" &&
			obj.Name() == "Segment"
	}
	return false
}

func isReleaseType(pass *Pass, t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pass.Module.Path+"/internal/abstraction" &&
		obj.Name() == "Release"
}

// isResponseType reports whether t (or its pointee) is a named struct
// whose name marks it as a consumer-facing response shape.
func isResponseType(pass *Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return false
	}
	return responseTypeRe.MatchString(named.Obj().Name())
}

func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
