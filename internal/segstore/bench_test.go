package segstore

import (
	"fmt"
	"testing"
	"time"

	"sensorsafe/internal/storage"
)

// benchStore builds a compacted store with 20 contributors x 1000
// records (4 samples each, 10s stride so wave-merge cannot collapse
// the population).
func benchStore(b *testing.B) *Store {
	b.Helper()
	s, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	for c := 0; c < 20; c++ {
		for i := 0; i < 1000; i++ {
			seg := mkSeg(fmt.Sprintf("c%d", c), time.Duration(i*10)*time.Second, 4)
			if _, err := s.Put(seg); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.Compact(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkDiskScan is the E12 scan-throughput shape: a full-range scan
// decoding every block. The 2x-of-in-memory budget in the benchharness
// is won or lost here.
func BenchmarkDiskScan(b *testing.B) {
	s := benchStore(b)
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Scan(storage.Query{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 20000 {
			b.Fatal(len(res))
		}
	}
}

// BenchmarkDiskPointQuery measures a narrow time-window read for one
// contributor: the sparse index should keep this at one or two block
// decodes regardless of store size.
func BenchmarkDiskPointQuery(b *testing.B) {
	s := benchStore(b)
	defer s.Close()
	from := t0.Add(5000 * time.Second)
	to := t0.Add(5050 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Scan(storage.Query{Contributor: "c7", From: from, To: to})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("point query returned nothing")
		}
	}
}
