package rules

import (
	"sort"
	"strings"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

// Request describes one access-control question: may this consumer see this
// contributor's data taken at this instant, place, and context?
type Request struct {
	// Consumer is the requesting consumer's user name.
	Consumer string
	// ConsumerGroups are the groups/studies the consumer belongs to.
	ConsumerGroups []string
	// At is the instant the data was recorded.
	At time.Time
	// Location is where the data was recorded.
	Location geo.Point
	// ActiveContexts are the inferred context labels active at At.
	ActiveContexts []string
}

// Decision is the engine's answer: which channels may flow raw, at what
// location/time granularity, and each context category's level — after the
// sensor/context dependency closure has run.
type Decision struct {
	// Channels maps channel name → raw data may flow. Channels absent from
	// the map were never granted. The map already reflects the dependency
	// closure.
	Channels map[string]bool
	// AllChannelsGranted is set when some matching rule had no sensor
	// condition, granting channels not known to the engine a priori. The
	// closure still blocks inference-bearing channels individually.
	AllChannelsGranted bool
	// Location is the granted location granularity.
	Location geo.LocationGranularity
	// Time is the granted timestamp granularity.
	Time timeutil.Granularity
	// Contexts maps category → granted level (LevelNotShared when absent).
	Contexts map[Category]Level
	// Matched lists the IDs of the rules whose conditions held for the
	// request, in rule-set order (rules without an ID are not listed).
	// This is decision provenance for traces and audit — "why was this
	// span abstracted?" — and must never reach consumer-facing payloads:
	// rule IDs reveal the structure of a contributor's policy.
	Matched []string
	// Cached reports whether the decision was served from a memoized
	// decision cache (ruleindex) instead of being evaluated. It is trace
	// provenance, not decision semantics: two decisions differing only in
	// Cached are the same decision.
	Cached bool `json:"-"`
}

// Clone deep-copies the decision, preserving the nil-vs-empty shape of
// its maps and slices so a cached copy is indistinguishable from a fresh
// evaluation.
func (d *Decision) Clone() *Decision {
	out := *d
	if d.Channels != nil {
		out.Channels = make(map[string]bool, len(d.Channels))
		for k, v := range d.Channels {
			out.Channels[k] = v
		}
	}
	if d.Contexts != nil {
		out.Contexts = make(map[Category]Level, len(d.Contexts))
		for k, v := range d.Contexts {
			out.Contexts[k] = v
		}
	}
	if d.Matched != nil {
		out.Matched = append(make([]string, 0, len(d.Matched)), d.Matched...)
	}
	return &out
}

// SharesAnything reports whether the decision releases any information.
func (d *Decision) SharesAnything() bool {
	if d.AllChannelsGranted {
		return true
	}
	for _, ok := range d.Channels {
		if ok {
			return true
		}
	}
	for _, l := range d.Contexts {
		if l != LevelNotShared {
			return true
		}
	}
	return false
}

// ChannelShared reports whether raw data of the channel may flow. With
// AllChannelsGranted, channels not explicitly blocked flow if they bear no
// inference risk (the closure recorded risky ones explicitly).
func (d *Decision) ChannelShared(channel string) bool {
	if v, ok := d.Channels[channel]; ok {
		return v
	}
	return d.AllChannelsGranted
}

// ContextLevel returns the granted level for a category.
func (d *Decision) ContextLevel(cat Category) Level {
	if l, ok := d.Contexts[cat]; ok {
		return l
	}
	return LevelNotShared
}

// denyAll is the default decision.
func denyAll() *Decision {
	return &Decision{
		Channels: map[string]bool{},
		Location: geo.LocNotShared,
		Time:     timeutil.GranNotShared,
		Contexts: map[Category]Level{},
	}
}

// Decider is the rule-evaluation seam shared by the linear Engine and the
// compiled index (internal/ruleindex): enforcement and delivery paths
// accept either, so the index can slot in behind every release path
// without changing decision semantics.
type Decider interface {
	// Decide evaluates the rule set for one request.
	Decide(req *Request) *Decision
	// BoundariesWithin returns the sorted instants inside (from, to) at
	// which the rule set's time conditions can change a decision.
	BoundariesWithin(from, to time.Time) []time.Time
}

// Engine evaluates a contributor's rule set. It resolves location labels
// through the contributor's gazetteer. Engines are cheap to construct and
// safe for concurrent use once built.
type Engine struct {
	rules     []*Rule
	gazetteer *geo.Gazetteer
}

// NewEngine builds an engine over a rule set. gaz may be nil when no rule
// uses location labels. Rules are validated; the first invalid rule aborts.
// The engine's private clones are compiled: string conditions are
// case-fold-canonicalized once here so per-request matching is map lookups
// instead of EqualFold scans.
func NewEngine(rs []*Rule, gaz *geo.Gazetteer) (*Engine, error) {
	for _, r := range rs {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	cloned := make([]*Rule, len(rs))
	for i, r := range rs {
		cloned[i] = r.Clone()
		cloned[i].compile()
	}
	return &Engine{rules: cloned, gazetteer: gaz}, nil
}

// Rules returns a copy of the engine's rule set.
func (e *Engine) Rules() []*Rule {
	out := make([]*Rule, len(e.rules))
	for i, r := range e.rules {
		out[i] = r.Clone()
	}
	return out
}

// CompiledRules exposes the engine's internal compiled rule slice for the
// rule index (internal/ruleindex), which must evaluate the exact same rule
// objects — including their compile-time memos — the linear engine uses.
// The slice and the rules are shared and MUST be treated as read-only.
func (e *Engine) CompiledRules() []*Rule { return e.rules }

// Gazetteer returns the place dictionary the engine resolves location
// labels against; nil when the engine was built without one.
func (e *Engine) Gazetteer() *geo.Gazetteer { return e.gazetteer }

// foldedRequest is a request with its string dimensions fold-canonicalized
// once, so matching N rules costs N map lookups, not N folds.
type foldedRequest struct {
	req      *Request
	consumer string
	groups   []string
	contexts []string
}

func foldRequest(req *Request) foldedRequest {
	f := foldedRequest{req: req, consumer: Fold(req.Consumer)}
	if len(req.ConsumerGroups) > 0 {
		f.groups = make([]string, len(req.ConsumerGroups))
		for i, g := range req.ConsumerGroups {
			f.groups[i] = Fold(g)
		}
	}
	if len(req.ActiveContexts) > 0 {
		f.contexts = make([]string, len(req.ActiveContexts))
		for i, c := range req.ActiveContexts {
			f.contexts[i] = Fold(c)
		}
	}
	return f
}

// matches reports whether the rule's conditions hold for the request. The
// sensor condition does not participate in matching — it scopes the action.
func (e *Engine) matches(r *Rule, f *foldedRequest) bool {
	if !consumerMatches(r, f) {
		return false
	}
	if !e.locationMatches(r, f.req.Location) {
		return false
	}
	if !timeMatches(r, f.req.At) {
		return false
	}
	return contextMatches(r, f)
}

func consumerMatches(r *Rule, f *foldedRequest) bool {
	if len(r.Consumers) == 0 && len(r.Groups) == 0 {
		return true
	}
	if m := r.memo; m != nil {
		if _, ok := m.consumers[f.consumer]; ok {
			return true
		}
		for _, g := range f.groups {
			if _, ok := m.groups[g]; ok {
				return true
			}
		}
		return false
	}
	for _, c := range r.Consumers {
		if strings.EqualFold(c, f.req.Consumer) {
			return true
		}
	}
	for _, g := range r.Groups {
		for _, cg := range f.req.ConsumerGroups {
			if strings.EqualFold(g, cg) {
				return true
			}
		}
	}
	return false
}

func (e *Engine) locationMatches(r *Rule, p geo.Point) bool {
	if len(r.LocationLabels) == 0 && len(r.Regions) == 0 {
		return true
	}
	for _, label := range r.LocationLabels {
		if e.gazetteer == nil {
			continue
		}
		if rg, ok := e.gazetteer.Lookup(label); ok && rg.Contains(p) {
			return true
		}
	}
	for _, rg := range r.Regions {
		if rg.Contains(p) {
			return true
		}
	}
	return false
}

func timeMatches(r *Rule, at time.Time) bool {
	if len(r.TimeRanges) == 0 && len(r.RepeatTimes) == 0 {
		return true
	}
	for _, rng := range r.TimeRanges {
		if rng.Contains(at) {
			return true
		}
	}
	for _, rep := range r.RepeatTimes {
		if rep.Contains(at) {
			return true
		}
	}
	return false
}

func contextMatches(r *Rule, f *foldedRequest) bool {
	if len(r.Contexts) == 0 {
		return true
	}
	if m := r.memo; m != nil {
		for _, have := range f.contexts {
			if _, ok := m.contexts[have]; ok {
				return true
			}
		}
		return false
	}
	for _, want := range r.Contexts {
		for _, have := range f.req.ActiveContexts {
			if strings.EqualFold(want, have) {
				return true
			}
		}
	}
	return false
}

// Decide evaluates the rule set for one request and returns the effective
// decision, including the dependency closure.
func (e *Engine) Decide(req *Request) *Decision {
	f := foldRequest(req)
	var matched []*Rule
	for _, r := range e.rules {
		if e.matches(r, &f) {
			matched = append(matched, r)
		}
	}
	return Combine(matched)
}

// Combine folds an ordered list of matching rules into the effective
// decision — grants union, clamps combine most-restrictively, denies
// override, then the dependency closure runs. It is the single combiner
// behind both the linear engine and the compiled index
// (internal/ruleindex): the index computes the matched set differently but
// MUST produce byte-identical decisions, which holds by construction when
// both feed the same rules (in rule-set order) through this function.
func Combine(matched []*Rule) *Decision {
	d := denyAll()

	grantedChannels := map[string]bool{} // channel → granted by some rule
	deniedChannels := map[string]bool{}  // channel → revoked by some rule
	grantAll := false
	denyEverything := false
	grantedCats := map[Category]bool{}
	deniedCats := map[Category]bool{}
	clampCats := map[Category]Level{}
	locClamp := geo.LocCoordinates
	timeClamp := timeutil.GranMillisecond

	for _, r := range matched {
		if r.ID != "" {
			d.Matched = append(d.Matched, r.ID)
		}
		switch r.Action.Kind {
		case ActionAllow:
			if r.GovernsAllChannels() {
				grantAll = true
			} else {
				for _, s := range r.Sensors {
					grantedChannels[s] = true
				}
			}
			for _, cat := range r.governedCategories() {
				grantedCats[cat] = true
			}
		case ActionAbstract:
			// An abstraction action is primarily a *restriction*: its
			// location/time entries clamp what other rules release, and a
			// category entry both clamps the category and grants it at the
			// named level (so a standalone "share Activity as Move/NotMove"
			// rule works). It never grants raw channels — that is what
			// Allow is for. This keeps a consumer-unscoped restriction
			// like Fig. 4's "Stress: NotShared while in conversation" from
			// silently granting everything else to everyone.
			spec := r.Action.Abstraction
			if spec.Location != nil {
				locClamp = geo.CoarsestLocation(locClamp, *spec.Location)
			}
			if spec.Time != nil {
				timeClamp = timeutil.Coarsest(timeClamp, *spec.Time)
			}
			for cat, l := range spec.Contexts {
				cur, seen := clampCats[cat]
				if !seen || l.CoarserThan(cur) {
					clampCats[cat] = l
				}
				if l != LevelNotShared {
					grantedCats[cat] = true
				}
			}
		case ActionDeny:
			if r.GovernsAllChannels() {
				denyEverything = true
			}
			for _, s := range r.Sensors {
				deniedChannels[s] = true
			}
			for _, cat := range Categories() {
				if r.CoversAllSensorsOf(cat) {
					deniedCats[cat] = true
				}
			}
		}
	}

	if denyEverything {
		grantAll = false
		grantedChannels = map[string]bool{}
		grantedCats = map[Category]bool{}
	}

	// Effective context levels before closure.
	for cat := range grantedCats {
		if deniedCats[cat] {
			continue
		}
		level := LevelRaw
		if clamp, ok := clampCats[cat]; ok {
			level = MostRestrictive(level, clamp)
		}
		if level != LevelNotShared {
			d.Contexts[cat] = level
		}
	}

	// Location/time granularities flow whenever any grant survived.
	if grantAll || len(grantedChannels) > 0 || len(d.Contexts) > 0 {
		d.Location = locClamp
		d.Time = timeClamp
	}

	// Channel grants before closure.
	d.AllChannelsGranted = grantAll
	for ch := range grantedChannels {
		d.Channels[ch] = true
	}
	for ch := range deniedChannels {
		d.Channels[ch] = false
	}

	applyClosure(d)
	return d
}

// applyClosure enforces the sensor/context dependency graph: raw data of a
// channel flows only if every category inferable from it is granted at
// LevelRaw, and GPS channels only at Coordinates location granularity.
func applyClosure(d *Decision) {
	blockIfRisky := func(ch string) {
		for _, cat := range SensorCategories(ch) {
			if d.ContextLevel(cat) != LevelRaw {
				d.Channels[ch] = false
				return
			}
		}
		if (ch == wavesegment.ChannelLatitude || ch == wavesegment.ChannelLongitude) && d.Location != geo.LocCoordinates {
			d.Channels[ch] = false
		}
	}
	for ch, ok := range d.Channels {
		if ok {
			blockIfRisky(ch)
		}
	}
	if d.AllChannelsGranted {
		// Materialize explicit blocks for every inference-bearing channel so
		// ChannelShared answers correctly for channels granted via "all".
		for _, cat := range Categories() {
			for _, ch := range categorySensors[cat] {
				if _, seen := d.Channels[ch]; !seen {
					d.Channels[ch] = true
				}
				if d.Channels[ch] {
					blockIfRisky(ch)
				}
			}
		}
	}
	// If nothing flows at all, hide location/time too.
	if !d.SharesAnything() {
		d.Location = geo.LocNotShared
		d.Time = timeutil.GranNotShared
	}
}

// BoundariesWithin returns the sorted instants inside (from, to) at which
// the rule set's time conditions can change a decision: absolute range
// endpoints and recurring-window edges. Enforcement uses these to cut a
// segment into spans of constant decision.
func (e *Engine) BoundariesWithin(from, to time.Time) []time.Time {
	var out []time.Time
	add := func(t time.Time) {
		if t.After(from) && t.Before(to) {
			out = append(out, t)
		}
	}
	for _, r := range e.rules {
		for _, rng := range r.TimeRanges {
			if !rng.Start.IsZero() {
				add(rng.Start)
			}
			if !rng.End.IsZero() {
				add(rng.End)
			}
		}
		for _, rep := range r.RepeatTimes {
			if rep.IsZero() {
				continue
			}
			wFrom, wTo := rep.Window()
			// Walk each local day the span touches and add window edges.
			day := time.Date(from.Year(), from.Month(), from.Day(), 0, 0, 0, 0, from.Location())
			for !day.After(to) {
				if wFrom != wTo {
					add(day.Add(time.Duration(wFrom) * time.Minute))
					add(day.Add(time.Duration(wTo) * time.Minute))
				} else {
					add(day) // whole-day windows flip at midnight
				}
				day = day.AddDate(0, 0, 1)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	// Dedupe.
	dedup := out[:0]
	for i, t := range out {
		if i == 0 || !t.Equal(dedup[len(dedup)-1]) {
			dedup = append(dedup, t)
		}
	}
	return dedup
}
