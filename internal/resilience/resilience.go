// Package resilience is SensorSafe's fault-tolerance layer for every
// network hop: error classification (retryable vs. terminal), a capped
// exponential-backoff retry engine with jitter, retry budgets, and
// Retry-After respect, a bounded idempotency cache so retried mutations
// are applied exactly once, and crash-safe atomic file writes for the
// services' durable state. Like obs, it depends only on the standard
// library so the clients, servers, datastore, broker, and phone can all
// share one policy vocabulary.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"time"
)

// ErrStaleVersion marks a replica push rejected because the receiver
// already holds a newer (or equal) version. It is a *convergence signal*,
// not a failure: the sender should drop its pending entry, never retry.
// The HTTP layer maps it to 409 Conflict and back.
var ErrStaleVersion = errors.New("stale replica version")

// ErrCircuitOpen marks an operation short-circuited by a tripped circuit
// breaker: the target is known-bad and no request was sent. It is
// terminal for the current call — the breaker, not the retry loop, owns
// the recovery schedule — so Retryable reports false for it.
var ErrCircuitOpen = errors.New("circuit breaker open")

// CircuitBreaker gates attempts against one target. Allow reports nil
// when an attempt may proceed (or an error wrapping ErrCircuitOpen when
// the target is tripped); Report feeds the attempt's outcome back so the
// breaker can trip and recover. internal/overload provides the
// implementation; the interface lives here so Policy need not import it.
type CircuitBreaker interface {
	Allow() error
	Report(err error)
}

// retryableError and terminalError force a classification on errors whose
// dynamic type says nothing about transience.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// MarkRetryable wraps err so Retryable reports true.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err}
}

// MarkTerminal wraps err so Retryable reports false even for network-ish
// error types.
func MarkTerminal(err error) error {
	if err == nil {
		return nil
	}
	return &terminalError{err}
}

// StatusError is an HTTP response that signaled failure. The retry engine
// consults Code (5xx and 429 are transient, other 4xx are the caller's
// bug) and RetryAfter (the server's own backoff hint).
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// RetryAfter is the parsed Retry-After delay (0 when absent).
	RetryAfter time.Duration
	// Msg is the human-readable error, already formatted by the caller.
	Msg string
}

func (e *StatusError) Error() string { return e.Msg }

// Unwrap lets errors.Is(err, ErrStaleVersion) see through a 409: the wire
// cannot carry the sentinel itself, so the status code stands in for it.
func (e *StatusError) Unwrap() error {
	if e.Code == http.StatusConflict {
		return ErrStaleVersion
	}
	return nil
}

// transient reports whether the status code is worth retrying.
func (e *StatusError) transient() bool {
	switch e.Code {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// RetryAfterOf extracts the server's Retry-After hint from an error chain
// (0 when there is none).
func RetryAfterOf(err error) time.Duration {
	var se *StatusError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// IsStale reports whether err is a stale-version rejection — the receiver
// already converged past what the sender offered.
func IsStale(err error) bool { return errors.Is(err, ErrStaleVersion) }

// Retryable classifies an error: true means another attempt could
// plausibly succeed (network failures, timeouts, torn bodies, 5xx/429);
// false means retrying is useless or unsafe (cancellation, validation
// failures, auth rejections, stale versions).
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	// Explicit marks win over everything below.
	var te *terminalError
	if errors.As(err, &te) {
		return false
	}
	var re *retryableError
	if errors.As(err, &re) {
		return true
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	// A deadline blown on one attempt is the textbook transient failure;
	// Policy.Do separately stops when the *caller's* context is done.
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.transient()
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true // torn response body
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return true // http.Client transport failures
	}
	return false
}

// Status builds a StatusError with a formatted message.
func Status(code int, retryAfter time.Duration, format string, args ...any) *StatusError {
	return &StatusError{Code: code, RetryAfter: retryAfter, Msg: fmt.Sprintf(format, args...)}
}
