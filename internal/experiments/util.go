package experiments

import (
	"bytes"
	"io"
	"net/http"
)

// jsonReader wraps a body for http.Post.
func jsonReader(b []byte) io.Reader { return bytes.NewReader(b) }

// drain reads and discards a response body, returning its size.
func drain(resp *http.Response) (int, error) {
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	return int(n), err
}
