// Command storeserver runs one SensorSafe remote data store: the
// per-contributor (or institutional) server that ingests sensor uploads,
// enforces privacy rules on every consumer query, and synchronizes rule
// replicas to the broker.
//
// Usage:
//
//	storeserver -listen :8081 -name http://localhost:8081 \
//	    -dir ./data/store1 -broker http://localhost:8080
//
// With -broker set, contributor registrations and rule changes propagate to
// the broker over its HTTP API, exactly as in a multi-host deployment.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"sensorsafe/internal/datastore"
	"sensorsafe/internal/httpapi"
)

func main() {
	listen := flag.String("listen", ":8081", "address to listen on")
	name := flag.String("name", "", "public address of this store (defaults to http://localhost<listen>)")
	dir := flag.String("dir", "", "storage directory (empty = in-memory)")
	brokerURL := flag.String("broker", "", "broker base URL for rule sync and contributor registration")
	maxSamples := flag.Int("max-segment-samples", 0, "wave-segment size cap (0 = default)")
	useTLS := flag.Bool("tls", false, "serve HTTPS with a self-signed certificate")
	flag.Parse()

	if *name == "" {
		*name = "http://localhost" + *listen
	}

	opts := datastore.Options{
		Name:              *name,
		Dir:               *dir,
		MaxSegmentSamples: *maxSamples,
	}
	if *brokerURL != "" {
		bc := &httpapi.BrokerClient{BaseURL: *brokerURL}
		opts.Sync = bc
		opts.Directory = bc
	}
	svc, err := datastore.New(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "storeserver: %v\n", err)
		os.Exit(1)
	}
	defer svc.Close()

	log.Printf("remote data store %s listening on %s (dir=%q broker=%q tls=%v)", *name, *listen, *dir, *brokerURL, *useTLS)
	handler := httpapi.NewStoreHandler(svc)
	if *useTLS {
		tlsCfg, err := httpapi.SelfSignedTLS([]string{"localhost", "127.0.0.1"}, 0)
		if err != nil {
			log.Fatalf("storeserver: %v", err)
		}
		server := &http.Server{Addr: *listen, Handler: handler, TLSConfig: tlsCfg}
		if err := server.ListenAndServeTLS("", ""); err != nil {
			log.Fatalf("storeserver: %v", err)
		}
		return
	}
	if err := http.ListenAndServe(*listen, handler); err != nil {
		log.Fatalf("storeserver: %v", err)
	}
}
