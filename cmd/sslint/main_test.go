package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The module is clean at HEAD, so running the CLI over it exercises the
// full load + analyze path and must exit 0 with no findings.
func TestRunCleanModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output: %s", stdout.String())
	}
}

func TestRunJSONCleanModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-only", "obsnames"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var diags []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Errorf("clean module reported %d findings: %v", len(diags), diags)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestRunUnknownSkip(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-skip", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestRunBadPackagePattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "no packages match") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
