package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/federation"
	"sensorsafe/internal/query"
)

// E11Config parameterizes the federated cohort-query experiment: a cohort
// spread over N simulated stores (fixed per-call latency plus a seeded
// straggler fraction) is fetched three ways — sequentially (connect+query
// one store at a time, the naive consumer loop), through the federation
// engine, and through the engine with hedged requests — and the wall-clock
// times are compared.
type E11Config struct {
	// StoreCounts sweeps the cohort width.
	StoreCounts []int
	// PerStoreLatency is the simulated base cost of one store query.
	PerStoreLatency time.Duration
	// SlowFraction of store calls straggle at SlowLatency instead.
	SlowFraction float64
	// SlowLatency is the straggler's per-call cost.
	SlowLatency time.Duration
	// SegmentsPerStore is how many releases each store returns.
	SegmentsPerStore int
	// Concurrency bounds the engine's fan-out workers.
	Concurrency int
	// HedgeAfter is the hedged variant's duplicate-request delay.
	HedgeAfter time.Duration
	// Rounds per cell; the minimum is reported (steady-state cost).
	Rounds int
	// Seed drives the straggler coin flips so runs reproduce.
	Seed int64
}

// DefaultE11 sweeps 1/10/50 stores at 2ms per call with 10% stragglers at
// 20ms — small enough for CI, wide enough that fan-out and hedging are
// both visible.
func DefaultE11() E11Config {
	return E11Config{
		StoreCounts:      []int{1, 10, 50},
		PerStoreLatency:  2 * time.Millisecond,
		SlowFraction:     0.1,
		SlowLatency:      20 * time.Millisecond,
		SegmentsPerStore: 4,
		Concurrency:      16,
		HedgeAfter:       5 * time.Millisecond,
		Rounds:           3,
		Seed:             0xE11,
	}
}

// e11Store simulates one remote store: every query costs the base latency,
// or the straggler latency with probability SlowFraction, then returns the
// store's canned releases. The per-call coin flip means a hedged retry is
// usually fast — exactly the tail-latency shape hedging exists for.
type e11Store struct {
	name string
	rels []*abstraction.Release
	base time.Duration
	slow time.Duration
	frac float64

	mu  sync.Mutex
	rng *rand.Rand
}

func (s *e11Store) QueryCtx(ctx context.Context, _ auth.APIKey, _ *query.Query) ([]*abstraction.Release, error) {
	d := s.base
	s.mu.Lock()
	if s.frac > 0 && s.rng.Float64() < s.frac {
		d = s.slow
	}
	s.mu.Unlock()
	select {
	case <-time.After(d):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.rels, nil
}

// e11Broker resolves the simulated cohort; Connect is instant so the
// measured difference is purely the query fan-out strategy.
type e11Broker struct {
	stores map[string]*e11Store
}

func (b *e11Broker) SearchInfoCtx(context.Context, auth.APIKey, *broker.SearchQuery) ([]broker.SearchHit, error) {
	var hits []broker.SearchHit
	for name := range b.stores {
		hits = append(hits, broker.SearchHit{Contributor: name, StoreAddr: name})
	}
	return hits, nil
}

func (b *e11Broker) DirectoryCtx(context.Context, auth.APIKey) ([]broker.ContributorInfo, error) {
	var dir []broker.ContributorInfo
	for name := range b.stores {
		dir = append(dir, broker.ContributorInfo{Name: name, StoreAddr: name})
	}
	return dir, nil
}

func (b *e11Broker) ListCtx(context.Context, auth.APIKey, string) ([]string, error) {
	return nil, fmt.Errorf("e11: no lists")
}

func (b *e11Broker) StudyContributorsCtx(context.Context, string) ([]string, error) {
	return nil, fmt.Errorf("e11: no studies")
}

func (b *e11Broker) ConnectCtx(_ context.Context, _ auth.APIKey, contributor string) (broker.Credential, error) {
	return broker.Credential{StoreAddr: contributor, Key: auth.APIKey("key-" + contributor)}, nil
}

// RunE11 measures federated scatter-gather against the naive sequential
// consumer loop across cohort widths, with and without hedged requests.
func RunE11(cfg E11Config) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Caption: "federated cohort queries: sequential vs scatter-gather vs hedged scatter-gather",
		Headers: []string{"stores", "releases", "sequential", "federated", "hedged", "speedup", "verdict"},
		Notes: []string{
			fmt.Sprintf("simulated stores: %v per query, %.0f%% stragglers at %v; connect is free so the columns isolate the fan-out strategy",
				cfg.PerStoreLatency, cfg.SlowFraction*100, cfg.SlowLatency),
			fmt.Sprintf("federated = engine with %d workers, unhedged; hedged adds a duplicate request after %v", cfg.Concurrency, cfg.HedgeAfter),
			fmt.Sprintf("best of %d rounds per cell; verdict checks result equality and the >=5x speedup target at the widest cohort", cfg.Rounds),
		},
	}
	for _, n := range cfg.StoreCounts {
		row, err := e11Cell(cfg, n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func e11Cell(cfg E11Config, n int) ([]string, error) {
	stores := make(map[string]*e11Store, n)
	var names []string
	base := time.Date(2026, 8, 5, 8, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("c%03d", i)
		rels := make([]*abstraction.Release, cfg.SegmentsPerStore)
		for j := range rels {
			start := base.Add(time.Duration(i)*time.Minute + time.Duration(j)*time.Hour)
			rels[j] = &abstraction.Release{Contributor: name, Start: start, End: start.Add(time.Minute)}
		}
		stores[name] = &e11Store{
			name: name, rels: rels,
			base: cfg.PerStoreLatency, slow: cfg.SlowLatency, frac: cfg.SlowFraction,
			rng: rand.New(rand.NewSource(cfg.Seed + int64(i))),
		}
		names = append(names, name)
	}
	bk := &e11Broker{stores: stores}
	// Offline benchmark harness: this cell IS the call-tree root, so there
	// is no caller context to thread.
	//sslint:ignore ctxpropagate experiment harness is the call-tree root
	ctx := context.Background()

	// Sequential baseline: the pre-federation consumer loop — connect and
	// query one store at a time, then sort client-side.
	sequential := func() (int, error) {
		var all []*abstraction.Release
		for _, name := range names {
			cred, err := bk.ConnectCtx(ctx, "k", name)
			if err != nil {
				return 0, err
			}
			rels, err := stores[cred.StoreAddr].QueryCtx(ctx, cred.Key, &query.Query{Contributor: name})
			if err != nil {
				return 0, err
			}
			all = append(all, rels...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Start.Before(all[j].Start) })
		return len(all), nil
	}

	engine := func(hedge time.Duration) *federation.Engine {
		return &federation.Engine{
			Broker: bk, Key: "k",
			Dial: func(addr string) federation.Store { return stores[addr] },
			Options: federation.Options{
				Concurrency:     cfg.Concurrency,
				PerStoreTimeout: 10 * time.Second,
				HedgeAfter:      hedge,
			},
		}
	}
	federated := func(eng *federation.Engine) (int, bool, error) {
		res, err := eng.CohortQuery(ctx, &federation.Request{
			Cohort: federation.Cohort{Contributors: names},
		})
		if err != nil {
			return 0, false, err
		}
		return len(res.Releases), res.Partial, nil
	}

	want := n * cfg.SegmentsPerStore
	verdict := "PASS"
	timeIt := func(f func() (int, error)) (time.Duration, error) {
		best := time.Duration(0)
		for r := 0; r < cfg.Rounds; r++ {
			start := time.Now()
			got, err := f()
			d := time.Since(start)
			if err != nil {
				return 0, err
			}
			if got != want {
				verdict = fmt.Sprintf("FAIL: %d releases, want %d", got, want)
			}
			if r == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	seqT, err := timeIt(sequential)
	if err != nil {
		return nil, err
	}
	engPlain, engHedged := engine(0), engine(cfg.HedgeAfter)
	fedT, err := timeIt(func() (int, error) {
		got, partial, err := federated(engPlain)
		if partial {
			verdict = "FAIL: partial result with all stores up"
		}
		return got, err
	})
	if err != nil {
		return nil, err
	}
	hedgedT, err := timeIt(func() (int, error) {
		got, partial, err := federated(engHedged)
		if partial {
			verdict = "FAIL: partial result with all stores up"
		}
		return got, err
	})
	if err != nil {
		return nil, err
	}

	speedup := float64(seqT) / float64(fedT)
	// The acceptance bar: at the widest cohort the engine must beat the
	// sequential loop by >=5x.
	if n == cfg.StoreCounts[len(cfg.StoreCounts)-1] && n >= 50 && speedup < 5 && verdict == "PASS" {
		verdict = fmt.Sprintf("FAIL: %.1fx < 5x at %d stores", speedup, n)
	}
	return []string{
		fmt.Sprintf("%d", n),
		fmt.Sprintf("%d", want),
		fmtDur(seqT),
		fmtDur(fedT),
		fmtDur(hedgedT),
		fmt.Sprintf("%.1fx", speedup),
		verdict,
	}, nil
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
