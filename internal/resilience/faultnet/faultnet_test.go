package faultnet

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestDropInjection(t *testing.T) {
	served := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	defer srv.Close()
	tr := New(1, nil, Rule{Drop: 1})
	hc := &http.Client{Transport: tr}
	_, err := hc.Get(srv.URL + "/api/upload")
	if err == nil {
		t.Fatal("dropped request should error")
	}
	var de *DroppedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DroppedError inside url.Error", err)
	}
	if served != 0 {
		t.Fatal("dropped request must not reach the server")
	}
	if tr.Injected("drop") != 1 {
		t.Fatalf("drop count = %d", tr.Injected("drop"))
	}
}

func TestStatusInjection(t *testing.T) {
	served := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	defer srv.Close()
	tr := New(1, nil, Rule{Status: 1, StatusCode: 503, RetryAfter: 2 * time.Second})
	hc := &http.Client{Transport: tr}
	resp, err := hc.Get(srv.URL + "/api/sync")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want 2", resp.Header.Get("Retry-After"))
	}
	if served != 0 {
		t.Fatal("synthesized status must not reach the server")
	}
}

func TestTornBodyReachesServer(t *testing.T) {
	served := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.Write([]byte(`{"accepted":12,"duplicates":0,"rejected":0}`))
	}))
	defer srv.Close()
	tr := New(1, nil, Rule{Torn: 1})
	hc := &http.Client{Transport: tr}
	resp, err := hc.Get(srv.URL + "/api/upload")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, rerr := io.ReadAll(resp.Body)
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want ErrUnexpectedEOF", rerr)
	}
	if served != 1 {
		t.Fatal("torn request must still reach the server — that is the point")
	}
}

func TestPathScopingAndReconfigure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	tr := New(1, nil, Rule{Path: "/api/sync", Drop: 1})
	hc := &http.Client{Transport: tr}

	if _, err := hc.Get(srv.URL + "/api/upload"); err != nil {
		t.Fatalf("unmatched path should pass through: %v", err)
	}
	if _, err := hc.Get(srv.URL + "/api/sync"); err == nil {
		t.Fatal("matched path should drop")
	}
	tr.Configure() // heal the partition
	resp, err := hc.Get(srv.URL + "/api/sync")
	if err != nil {
		t.Fatalf("healed path should pass: %v", err)
	}
	resp.Body.Close()
}

func TestDeterministicSeeding(t *testing.T) {
	roll := func(seed int64) []bool {
		tr := New(seed, nil, Rule{Drop: 0.5})
		out := make([]bool, 20)
		for i := range out {
			kind, _ := tr.decide("/x")
			out[i] = kind == "drop"
		}
		return out
	}
	a, b := roll(42), roll(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must produce the same fault sequence")
		}
	}
}
