package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"sensorsafe/internal/datastore"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/httpapi"
	"sensorsafe/internal/phone"
	"sensorsafe/internal/query"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/resilience/faultnet"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/sensors"
)

// E10Config parameterizes the resilience experiment: a phone session runs
// against a real HTTP store through a fault-injecting transport at each
// failure rate, and after the network heals the durable outbox drains.
// The claim under test is zero sample loss at every rate.
type E10Config struct {
	// FailRates sweeps the per-request fault probability (two thirds
	// dropped connections, one third injected 503s).
	FailRates []float64
	// Minutes is the scripted session length per rate.
	Minutes int
	// BatchPackets sizes upload batches (smaller → more requests).
	BatchPackets int
	// Seed feeds the fault transport so runs reproduce.
	Seed int64
}

// DefaultE10 sweeps 0%–50% failure rates over a 4-minute session, plus a
// full-blackout row where every batch must ride the outbox.
func DefaultE10() E10Config {
	return E10Config{
		FailRates:    []float64{0, 0.1, 0.3, 0.5, 1},
		Minutes:      4,
		BatchPackets: 2,
		Seed:         0xE10,
	}
}

// RunE10 measures upload resilience under injected network faults: how
// many request attempts the retry engine absorbed, how many batches
// overflowed to the outbox, and — the invariant — that every sample the
// phone produced is at the store once connectivity returns.
func RunE10(cfg E10Config) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Caption: "upload resilience under injected faults (phone → store over HTTP)",
		Headers: []string{"fail rate", "samples sent", "faults injected", "batches spilled", "batches drained", "samples stored", "lost"},
		Notes: []string{
			"faults are 2/3 dropped connections, 1/3 injected 503s; the retry engine absorbs most, the durable outbox catches batches that exhaust their attempts",
			"the 100% row is a full blackout starting after registration: every batch spills and the post-heal drain recovers all of them",
			"after the run the transport heals and the outbox drains: 'lost' must be 0 at every rate",
		},
	}
	for _, rate := range cfg.FailRates {
		row, err := e10Session(cfg, rate)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func e10Session(cfg E10Config, rate float64) ([]string, error) {
	svc, err := datastore.New(datastore.Options{})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	server := httptest.NewServer(httpapi.NewStoreHandler(svc))
	defer server.Close()

	net := faultnet.New(cfg.Seed, nil)
	client := &httpapi.StoreClient{
		BaseURL: server.URL,
		HTTP:    &http.Client{Transport: net, Timeout: 10 * time.Second},
		Retry: &resilience.Policy{
			MaxAttempts: 8,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		},
	}
	alice, err := client.Register("alice", "contributor")
	if err != nil {
		return nil, fmt.Errorf("e10: register at rate %.0f%%: %w", rate*100, err)
	}
	// Connectivity degrades after registration; rate 1 is a blackout.
	if rate >= 1 {
		net.Configure(faultnet.Rule{Path: "/api/", Drop: 1})
	} else if rate > 0 {
		net.Configure(faultnet.Rule{
			Path:   "/api/",
			Drop:   rate * 2 / 3,
			Status: rate / 3, StatusCode: http.StatusServiceUnavailable,
		})
	}

	outboxDir, err := os.MkdirTemp("", "e10-outbox-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(outboxDir)
	p := &phone.Phone{
		Contributor:  "alice",
		Key:          alice.Key,
		Store:        client,
		BatchPackets: cfg.BatchPackets,
		Outbox:       &phone.Outbox{Dir: outboxDir},
	}
	rep, err := p.Run(&sensors.Scenario{
		Start:  time.Date(2026, 8, 5, 8, 0, 0, 0, time.UTC),
		Origin: geo.Point{Lat: 34.0250, Lon: -118.4950},
		Seed:   7,
		Phases: []sensors.Phase{{Duration: time.Duration(cfg.Minutes) * time.Minute, Activity: rules.CtxStill}},
	})
	if err != nil {
		return nil, fmt.Errorf("e10: session at rate %.0f%%: %w", rate*100, err)
	}

	// Heal and drain.
	net.Configure()
	drained, _, err := p.DrainOutbox()
	if err != nil {
		return nil, fmt.Errorf("e10: drain at rate %.0f%%: %w", rate*100, err)
	}
	segs, err := svc.QueryOwn(alice.Key, &query.Query{})
	if err != nil {
		return nil, err
	}
	stored := 0
	for _, s := range segs {
		stored += s.NumSamples()
	}
	lost := fmt.Sprintf("%d", rep.SamplesUploaded-stored)
	if rep.SamplesUploaded != stored {
		lost = fmt.Sprintf("FAIL %d", rep.SamplesUploaded-stored)
	}
	return []string{
		fmt.Sprintf("%.0f%%", rate*100),
		fmt.Sprintf("%d", rep.SamplesUploaded),
		fmt.Sprintf("%d", net.TotalInjected()),
		fmt.Sprintf("%d", rep.BatchesSpilled),
		fmt.Sprintf("%d", drained),
		fmt.Sprintf("%d", stored),
		lost,
	}, nil
}
