// Package bad exercises the atomicwrite analyzer: direct os write APIs on
// durable state paths must be flagged.
package bad

import "os"

func saveState(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600) // want "os.WriteFile is not crash-safe"
}

func createOutbox(path string) error {
	f, err := os.Create(path) // want "os.Create is not crash-safe"
	if err != nil {
		return err
	}
	return f.Close()
}
