// Package clean shows the context shapes the ctxpropagate analyzer must
// accept: the delegating-wrapper convention, proper Ctx call sites, and an
// explicit ignore directive at a call-tree root.
package clean

import "context"

type client struct{}

func (c *client) FetchCtx(ctx context.Context, n int) error { _ = ctx; _ = n; return nil }

// Fetch is the sanctioned single-statement wrapper delegating to its own
// Ctx sibling.
func (c *client) Fetch(n int) error {
	return c.FetchCtx(context.Background(), n)
}

func handler(ctx context.Context, c *client) error {
	return c.FetchCtx(ctx, 1)
}

func harness(c *client) error {
	//sslint:ignore ctxpropagate fixture harness is the call-tree root
	ctx := context.Background()
	return c.FetchCtx(ctx, 1)
}
