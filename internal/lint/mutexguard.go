package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MutexGuard checks `// guarded by <mu>` field annotations. A struct
// field carrying the annotation in its doc or line comment may only be
// read or written inside functions of the declaring package that
// demonstrably hold the mutex:
//
//   - the function body locks it (`x.mu.Lock()` / `x.mu.RLock()` on a
//     receiver of the owning struct type), or
//   - the function's name ends in "Locked" (the repo's convention for
//     helpers that run under a caller's lock), or
//   - the function's doc comment documents the contract ("callers hold
//     s.mu", "caller must hold mu", ...).
//
// Composite-literal construction (&Service{contributors: ...}) is not a
// field selector and is intentionally exempt: values being built are not
// yet shared. The check is per-function and does not model lock flow, so
// it is a conservative reviewer, not a prover — but it catches the common
// bug of a new accessor forgetting the lock entirely.
var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc:  "fields annotated `// guarded by <mu>` must be accessed under that mutex",
	Run:  runMutexGuard,
}

var guardedByRe = regexp.MustCompile(`(?i)guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// guardKey identifies one mutex of one struct type.
type guardKey struct {
	owner *types.TypeName
	mu    string
}

func runMutexGuard(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedAccesses(pass, guards, fd)
		}
	}
}

// collectGuards maps annotated field objects to their guard.
func collectGuards(pass *Pass) map[*types.Var]guardKey {
	guards := make(map[*types.Var]guardKey)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			owner, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if fv, ok := pass.Pkg.Info.Defs[name].(*types.Var); ok {
						guards[fv] = guardKey{owner: owner, mu: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment; "guarded by s.mu" and "guarded by mu" both yield "mu".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			parts := strings.Split(m[1], ".")
			return strings.TrimSuffix(parts[len(parts)-1], ".")
		}
	}
	return ""
}

func checkGuardedAccesses(pass *Pass, guards map[*types.Var]guardKey, fd *ast.FuncDecl) {
	locked := lockedMutexes(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.Pkg.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		fv, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		guard, guarded := guards[fv]
		if !guarded || locked[guard] {
			return true
		}
		if strings.HasSuffix(fd.Name.Name, "Locked") || docDeclaresHeld(fd, guard.mu) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %q but %s neither locks it nor documents the contract (lock %s, add the Locked suffix, or a 'callers hold %s' doc comment)",
			guard.owner.Name(), fv.Name(), guard.mu, fd.Name.Name, guard.mu, guard.mu)
		return true
	})
}

// lockedMutexes finds every `recv.mu.Lock()` / `recv.mu.RLock()` call in
// the body and records (owner type, mu) pairs the function acquires
// somewhere. Deferred unlocks and lock ordering are out of scope.
func lockedMutexes(pass *Pass, fd *ast.FuncDecl) map[guardKey]bool {
	locked := make(map[guardKey]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recvType := pass.Pkg.Info.Types[muSel.X].Type
		if recvType == nil {
			return true
		}
		if ptr, ok := recvType.(*types.Pointer); ok {
			recvType = ptr.Elem()
		}
		named, ok := recvType.(*types.Named)
		if !ok {
			return true
		}
		locked[guardKey{owner: named.Obj(), mu: muSel.Sel.Name}] = true
		return true
	})
	return locked
}

var holdRe = regexp.MustCompile(`(?i)callers?\s+(?:must\s+)?hold`)

// docDeclaresHeld reports whether fd's doc comment states the caller-holds
// contract for the given mutex name.
func docDeclaresHeld(fd *ast.FuncDecl, mu string) bool {
	if fd.Doc == nil {
		return false
	}
	text := fd.Doc.Text()
	if !holdRe.MatchString(text) {
		return false
	}
	muRe := regexp.MustCompile(`\b` + regexp.QuoteMeta(mu) + `\b`)
	return muRe.MatchString(text)
}
