// Package inference derives behavioural context labels from raw sensor
// signals: transportation mode from accelerometer + GPS (after Reddy et al.,
// cited as [33] in the paper), stress from ECG + respiration (after Plarre
// et al. [31]), smoking from respiration, and conversation from microphone
// energy. The paper treats these inferences as black boxes whose *outputs*
// drive access control; this implementation uses deterministic feature
// thresholds calibrated against the synthetic generators in package
// sensors, which is sufficient to exercise every access-control path.
package inference

import (
	"math"
	"sort"
	"time"

	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

// Thresholds calibrated against package sensors' generators.
const (
	// stressHeartRateBPM separates calm (~65 bpm) from stressed (~95 bpm).
	stressHeartRateBPM = 80
	// stressRespirationRPM separates calm (~14) from stressed (~20).
	stressRespirationRPM = 17
	// smokingRespirationRPM: deep slow puffs run ~8 cycles/min.
	smokingRespirationRPM = 11
	// smokingDepth: puff amplitude ~2.5 vs normal ~1.0.
	smokingDepth = 1.8
	// conversationEnergy: mean |mic| during speech ~0.3 vs ambient ~0.02.
	conversationEnergy = 0.12
	// ecgPeakLevel: R-peak excursion (~1.2) vs baseline noise (~0.05).
	ecgPeakLevel = 0.8
	// respCrossingHysteresis avoids noise-induced double counting.
	respCrossingHysteresis = 0.2
)

// Speed boundaries (m/s) between transportation modes.
const (
	speedStillMax = 0.3
	speedWalkMax  = 2.2
	speedRunMax   = 5.0
	speedBikeMax  = 9.0
)

// DefaultWindow is the inference window size.
const DefaultWindow = 10 * time.Second

// Features summarizes one analysis window.
type Features struct {
	Start time.Time
	End   time.Time
	// SpeedMPS is the straight-line GPS speed across the window.
	SpeedMPS float64
	// AccelVariance is the variance of the accel magnitude (gravity removed).
	AccelVariance float64
	// HeartRateBPM is the ECG R-peak rate.
	HeartRateBPM float64
	// RespirationRPM is the respiration cycle rate.
	RespirationRPM float64
	// RespirationDepth is the mean peak amplitude of the respiration wave.
	RespirationDepth float64
	// MicEnergy is the mean absolute microphone level.
	MicEnergy float64
	// Has* flag which sensors contributed.
	HasGPS, HasAccel, HasECG, HasResp, HasMic bool
}

// TransportMode classifies the window's transportation mode, or "" when the
// window lacks motion sensors.
func (f *Features) TransportMode() string {
	if !f.HasGPS && !f.HasAccel {
		return ""
	}
	if f.HasGPS {
		switch {
		case f.SpeedMPS < speedStillMax:
			// Idling vehicles vibrate; a stationary phone does not.
			if f.HasAccel && f.AccelVariance > 0.002 {
				return rules.CtxDrive
			}
			return rules.CtxStill
		case f.SpeedMPS < speedWalkMax:
			return rules.CtxWalk
		case f.SpeedMPS < speedRunMax:
			return rules.CtxRun
		case f.SpeedMPS < speedBikeMax:
			return rules.CtxBike
		default:
			return rules.CtxDrive
		}
	}
	// Accel-only fallback: amplitude separates still/walk/run coarsely.
	switch {
	case f.AccelVariance < 0.0005:
		return rules.CtxStill
	case f.AccelVariance < 0.1:
		return rules.CtxWalk
	default:
		return rules.CtxRun
	}
}

// Stressed classifies the window's stress state; ok is false without
// cardio-respiratory channels.
func (f *Features) Stressed() (stressed, ok bool) {
	if !f.HasECG || !f.HasResp {
		return false, false
	}
	return f.HeartRateBPM > stressHeartRateBPM && f.RespirationRPM > stressRespirationRPM, true
}

// SmokingDetected classifies the window's smoking state from respiration.
func (f *Features) SmokingDetected() (smoking, ok bool) {
	if !f.HasResp {
		return false, false
	}
	return f.RespirationDepth > smokingDepth && f.RespirationRPM < smokingRespirationRPM, true
}

// InConversation classifies the window from microphone energy.
func (f *Features) InConversation() (conv, ok bool) {
	if !f.HasMic {
		return false, false
	}
	return f.MicEnergy > conversationEnergy, true
}

// ExtractFeatures computes window features from one wave segment's samples
// in [from, to).
func ExtractFeatures(seg *wavesegment.Segment, from, to time.Time) Features {
	f := Features{Start: from, End: to}
	win := seg.Slice(from, to)
	if win == nil {
		return f
	}
	n := win.NumSamples()
	dur := win.Duration().Seconds()
	if n == 0 || dur <= 0 {
		return f
	}

	if lat, ok := win.Column(wavesegment.ChannelLatitude); ok {
		if lon, ok2 := win.Column(wavesegment.ChannelLongitude); ok2 && n >= 2 {
			f.HasGPS = true
			a := geo.Point{Lat: lat[0], Lon: lon[0]}
			b := geo.Point{Lat: lat[n-1], Lon: lon[n-1]}
			f.SpeedMPS = geo.Distance(a, b) / dur
		}
	}

	ax, okx := win.Column(wavesegment.ChannelAccelX)
	ay, oky := win.Column(wavesegment.ChannelAccelY)
	az, okz := win.Column(wavesegment.ChannelAccelZ)
	if okx && oky && okz {
		f.HasAccel = true
		mags := make([]float64, n)
		var mean float64
		for i := 0; i < n; i++ {
			m := math.Sqrt(ax[i]*ax[i]+ay[i]*ay[i]+az[i]*az[i]) - 1.0
			mags[i] = m
			mean += m
		}
		mean /= float64(n)
		var v float64
		for _, m := range mags {
			v += (m - mean) * (m - mean)
		}
		f.AccelVariance = v / float64(n)
	}

	if ecg, ok := win.Column(wavesegment.ChannelECG); ok {
		f.HasECG = true
		peaks := 0
		above := false
		for _, v := range ecg {
			if v > ecgPeakLevel {
				if !above {
					peaks++
					above = true
				}
			} else {
				above = false
			}
		}
		f.HeartRateBPM = float64(peaks) / dur * 60
	}

	if resp, ok := win.Column(wavesegment.ChannelRespiration); ok {
		f.HasResp = true
		crossings := 0
		state := 0 // -1 below, +1 above
		var peak float64
		for _, v := range resp {
			if a := math.Abs(v); a > peak {
				peak = a
			}
			switch {
			case v > respCrossingHysteresis && state <= 0:
				if state == -1 {
					crossings++
				}
				state = 1
			case v < -respCrossingHysteresis && state >= 0:
				state = -1
			}
		}
		f.RespirationRPM = float64(crossings) / dur * 60
		f.RespirationDepth = peak
	}

	if mic, ok := win.Column(wavesegment.ChannelMicrophone); ok {
		f.HasMic = true
		var sum float64
		for _, v := range mic {
			sum += math.Abs(v)
		}
		f.MicEnergy = sum / float64(n)
	}
	return f
}

// Annotator runs windowed inference over wave segments and merges
// consecutive equal labels into annotation spans.
type Annotator struct {
	// Window is the analysis window (DefaultWindow when zero).
	Window time.Duration
}

// Annotate infers context annotations from a batch of segments. Segments
// are analyzed independently (chest band and phone packets may interleave);
// the resulting spans are merged per context label.
func (a *Annotator) Annotate(segs []*wavesegment.Segment) []wavesegment.Annotation {
	win := a.Window
	if win <= 0 {
		win = DefaultWindow
	}
	var spans []wavesegment.Annotation
	for _, seg := range segs {
		spans = append(spans, a.annotateOne(seg, win)...)
	}
	return MergeAnnotations(spans)
}

func (a *Annotator) annotateOne(seg *wavesegment.Segment, win time.Duration) []wavesegment.Annotation {
	var out []wavesegment.Annotation
	start, end := seg.StartTime(), seg.EndTime()
	for from := start; from.Before(end); from = from.Add(win) {
		to := from.Add(win)
		if to.After(end) {
			to = end
		}
		f := ExtractFeatures(seg, from, to)
		emit := func(ctx string) {
			out = append(out, wavesegment.Annotation{Context: ctx, Start: from, End: to})
		}
		if mode := f.TransportMode(); mode != "" {
			emit(mode)
		}
		if stressed, ok := f.Stressed(); ok {
			if stressed {
				emit(rules.CtxStressed)
			} else {
				emit(rules.CtxNotStressed)
			}
		}
		if smoking, ok := f.SmokingDetected(); ok && smoking {
			emit(rules.CtxSmoking)
		}
		if conv, ok := f.InConversation(); ok && conv {
			emit(rules.CtxConversation)
		}
	}
	return out
}

// MergeAnnotations coalesces annotations with the same context label whose
// spans touch or overlap, returning spans sorted by start time.
func MergeAnnotations(spans []wavesegment.Annotation) []wavesegment.Annotation {
	byCtx := make(map[string][]wavesegment.Annotation)
	for _, s := range spans {
		byCtx[s.Context] = append(byCtx[s.Context], s)
	}
	var out []wavesegment.Annotation
	for _, group := range byCtx {
		sort.Slice(group, func(i, j int) bool { return group[i].Start.Before(group[j].Start) })
		cur := group[0]
		for _, s := range group[1:] {
			if !s.Start.After(cur.End) { // touching or overlapping
				if s.End.After(cur.End) {
					cur.End = s.End
				}
				continue
			}
			out = append(out, cur)
			cur = s
		}
		out = append(out, cur)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start.Equal(out[j].Start) {
			return out[i].Context < out[j].Context
		}
		return out[i].Start.Before(out[j].Start)
	})
	return out
}

// ApplyAnnotations attaches the inferred spans overlapping each segment to
// that segment (clipped to the segment's extent), the way the paper's phone
// annotates sensor data with context before upload.
func ApplyAnnotations(segs []*wavesegment.Segment, spans []wavesegment.Annotation) {
	for _, seg := range segs {
		ss, se := seg.StartTime(), seg.EndTime()
		for _, a := range spans {
			if !a.Overlaps(ss, se) {
				continue
			}
			from, to := a.Start, a.End
			if from.Before(ss) {
				from = ss
			}
			if to.After(se) {
				to = se
			}
			_ = seg.Annotate(a.Context, from, to)
		}
	}
}
