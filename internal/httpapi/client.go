package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/audit"
	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/query"
	"sensorsafe/internal/recommend"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

// doJSON posts a JSON body and decodes the JSON response, mapping error
// envelopes to Go errors. Every request carries an X-Request-ID — the
// context's when present (so a server handling an inbound request
// propagates its ID to outbound service-to-service calls), fresh
// otherwise — which the servers echo and log.
func doJSON(ctx context.Context, hc *http.Client, baseURL, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("httpapi: encode request: %w", err)
	}
	url := strings.TrimRight(baseURL, "/") + path
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("httpapi: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	id := obs.RequestID(ctx)
	if id == "" {
		id = obs.NewRequestID()
	}
	httpReq.Header.Set(requestIDHeader, id)
	httpResp, err := hc.Do(httpReq)
	if err != nil {
		return fmt.Errorf("httpapi: POST %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("httpapi: read response: %w", err)
	}
	if httpResp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("httpapi: %s: %s (HTTP %d)", path, eb.Error, httpResp.StatusCode)
		}
		return fmt.Errorf("httpapi: %s: HTTP %d", path, httpResp.StatusCode)
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("httpapi: decode response: %w", err)
	}
	return nil
}

func defaultClient() *http.Client {
	return &http.Client{Timeout: 30 * time.Second}
}

// getHealth fetches and decodes a server's /healthz report.
func getHealth(hc *http.Client, baseURL string) (Health, error) {
	url := strings.TrimRight(baseURL, "/") + "/healthz"
	resp, err := hc.Get(url)
	if err != nil {
		return Health{}, fmt.Errorf("httpapi: GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Health{}, fmt.Errorf("httpapi: /healthz: HTTP %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("httpapi: decode health: %w", err)
	}
	return h, nil
}

// StoreClient is a typed client for a remote data store's API. It
// satisfies phone.Store (Upload, RulesFor) and broker.StoreConn (Addr,
// ProvisionConsumer).
type StoreClient struct {
	// BaseURL is the store's address, e.g. "http://store1.example:8080".
	BaseURL string
	// HTTP is the underlying client (30 s timeout default when nil).
	HTTP *http.Client
}

func (c *StoreClient) hc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultClient()
}

// Addr returns the store's base URL.
func (c *StoreClient) Addr() string { return c.BaseURL }

// Register creates an account on the store.
func (c *StoreClient) Register(name, role string) (auth.User, error) {
	return c.register(context.Background(), name, role)
}

func (c *StoreClient) register(ctx context.Context, name, role string) (auth.User, error) {
	var resp registerResp
	if err := doJSON(ctx, c.hc(), c.BaseURL, "/api/register", &registerReq{Name: name, Role: role}, &resp); err != nil {
		return auth.User{}, err
	}
	r := auth.RoleConsumer
	if resp.Role == auth.RoleContributor.String() {
		r = auth.RoleContributor
	}
	return auth.User{Name: resp.Name, Role: r, Key: resp.Key}, nil
}

// ProvisionConsumer registers a consumer and returns the key (broker
// use). The context's request ID is forwarded so a consumer's connect
// request is correlated across broker and store logs.
func (c *StoreClient) ProvisionConsumer(ctx context.Context, name string) (auth.APIKey, error) {
	u, err := c.register(ctx, name, "consumer")
	if err != nil {
		return "", err
	}
	return u.Key, nil
}

// Health fetches the store's /healthz report.
func (c *StoreClient) Health() (Health, error) {
	return getHealth(c.hc(), c.BaseURL)
}

// Upload sends wave segments (Fig. 5 JSON on the wire).
func (c *StoreClient) Upload(key auth.APIKey, segs []*wavesegment.Segment) (int, error) {
	var resp uploadResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/upload", &uploadReq{Key: key, Segments: segs}, &resp); err != nil {
		return 0, err
	}
	return resp.Records, nil
}

// Query runs an enforced consumer query.
func (c *StoreClient) Query(key auth.APIKey, q *query.Query) ([]*abstraction.Release, error) {
	var resp queryResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/query", &queryReq{Key: key, Query: q}, &resp); err != nil {
		return nil, err
	}
	return resp.Releases, nil
}

// QueryText runs an enforced consumer query written in the mini-language.
func (c *StoreClient) QueryText(key auth.APIKey, text string) ([]*abstraction.Release, error) {
	var resp queryResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/query", &queryReq{Key: key, Text: text}, &resp); err != nil {
		return nil, err
	}
	return resp.Releases, nil
}

// QueryOwn retrieves the owner's raw data.
func (c *StoreClient) QueryOwn(key auth.APIKey, q *query.Query) ([]*wavesegment.Segment, error) {
	var resp queryOwnResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/queryown", &queryReq{Key: key, Query: q}, &resp); err != nil {
		return nil, err
	}
	return resp.Segments, nil
}

// SetRules replaces the owner's privacy rules (Fig. 4 JSON).
func (c *StoreClient) SetRules(key auth.APIKey, ruleSetJSON []byte) error {
	return doJSON(context.Background(), c.hc(), c.BaseURL, "/api/rules/set", &rulesSetReq{Key: key, Rules: ruleSetJSON}, &okResp{})
}

// Rules fetches the owner's privacy rules.
func (c *StoreClient) Rules(key auth.APIKey) ([]byte, error) {
	var resp rulesGetResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/rules/get", &rulesGetReq{Key: key}, &resp); err != nil {
		return nil, err
	}
	return resp.Rules, nil
}

// DefinePlace registers a labeled region.
func (c *StoreClient) DefinePlace(key auth.APIKey, label string, region geo.Region) error {
	return doJSON(context.Background(), c.hc(), c.BaseURL, "/api/places/define",
		&placeDefineReq{Key: key, Label: label, Region: region}, &okResp{})
}

// Places lists the owner's labeled regions.
func (c *StoreClient) Places(key auth.APIKey) ([]geo.Region, error) {
	var resp placesListResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/places/list", &rulesGetReq{Key: key}, &resp); err != nil {
		return nil, err
	}
	return resp.Places, nil
}

// AssignConsumerGroups records a consumer's groups for the owner's
// group-scoped rules.
func (c *StoreClient) AssignConsumerGroups(key auth.APIKey, consumer string, groups []string) error {
	return doJSON(context.Background(), c.hc(), c.BaseURL, "/api/groups/assign",
		&groupsAssignReq{Key: key, Consumer: consumer, Groups: groups}, &okResp{})
}

// Audit fetches the owner's access trail, newest first.
func (c *StoreClient) Audit(key auth.APIKey, consumer string, since time.Time, limit int) ([]audit.Event, error) {
	req := &auditEventsReq{Key: key, Consumer: consumer, Limit: limit}
	if !since.IsZero() {
		req.Since = since.Format(time.RFC3339)
	}
	var resp auditEventsResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/audit/events", req, &resp); err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// AuditSummary fetches the owner's per-consumer access aggregates.
func (c *StoreClient) AuditSummary(key auth.APIKey) ([]audit.ConsumerSummary, error) {
	var resp auditSummaryResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/audit/summary", &rulesGetReq{Key: key}, &resp); err != nil {
		return nil, err
	}
	return resp.Consumers, nil
}

// RotateKey invalidates the presented key and returns a fresh one.
func (c *StoreClient) RotateKey(key auth.APIKey) (auth.APIKey, error) {
	var resp registerResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/rotate", &rulesGetReq{Key: key}, &resp); err != nil {
		return "", err
	}
	return resp.Key, nil
}

// Recommend fetches privacy-rule suggestions mined from the owner's data.
func (c *StoreClient) Recommend(key auth.APIKey, minOverlap float64, minDuration time.Duration) ([]recommend.Suggestion, error) {
	req := &recommendReq{Key: key, MinOverlap: minOverlap}
	if minDuration > 0 {
		req.MinDuration = minDuration.String()
	}
	var resp recommendResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/recommend", req, &resp); err != nil {
		return nil, err
	}
	return resp.Suggestions, nil
}

// SetPassword sets the web-UI password, authenticating with the API key.
func (c *StoreClient) SetPassword(key auth.APIKey, password string) error {
	return doJSON(context.Background(), c.hc(), c.BaseURL, "/api/password", &passwordReq{Key: key, Password: password}, &okResp{})
}

// Login exchanges a username/password for a web session token.
func (c *StoreClient) Login(name, password string) (string, error) {
	var resp loginResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/login", &loginReq{Name: name, Password: password}, &resp); err != nil {
		return "", err
	}
	return resp.Token, nil
}

// RulesFor downloads and compiles the owner's rule set — the phone's
// §5.3 path. Returns nil when the owner has no rules yet.
func (c *StoreClient) RulesFor(key auth.APIKey) (*rules.Engine, error) {
	data, err := c.Rules(key)
	if err != nil {
		return nil, err
	}
	rs, err := rules.UnmarshalRuleSet(data)
	if err != nil {
		return nil, err
	}
	if len(rs) == 0 {
		return nil, nil
	}
	places, err := c.Places(key)
	if err != nil {
		return nil, err
	}
	gaz := geo.NewGazetteer()
	for _, rg := range places {
		if err := gaz.Define(rg.Label, rg); err != nil {
			return nil, err
		}
	}
	return rules.NewEngine(rs, gaz)
}

// BrokerClient is a typed client for the broker's API. It satisfies
// datastore.SyncTarget and datastore.Directory so a networked store can
// push replicas and registrations.
type BrokerClient struct {
	BaseURL string
	HTTP    *http.Client
}

func (c *BrokerClient) hc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultClient()
}

// Health fetches the broker's /healthz report.
func (c *BrokerClient) Health() (Health, error) {
	return getHealth(c.hc(), c.BaseURL)
}

// RegisterConsumer creates a consumer account.
func (c *BrokerClient) RegisterConsumer(name string) (auth.User, error) {
	var resp registerResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/consumers/register", &registerReq{Name: name}, &resp); err != nil {
		return auth.User{}, err
	}
	return auth.User{Name: resp.Name, Role: auth.RoleConsumer, Key: resp.Key}, nil
}

// RegisterContributor records a contributor → store mapping.
func (c *BrokerClient) RegisterContributor(name, storeAddr string) error {
	return doJSON(context.Background(), c.hc(), c.BaseURL, "/api/contributors/register",
		&brokerRegisterContribReq{Name: name, StoreAddr: storeAddr}, &okResp{})
}

// SyncRules pushes a contributor's rule replica (datastore.SyncTarget).
func (c *BrokerClient) SyncRules(contributor string, ruleSetJSON []byte, places []geo.Region) error {
	return doJSON(context.Background(), c.hc(), c.BaseURL, "/api/sync",
		&brokerSyncReq{Contributor: contributor, Rules: ruleSetJSON, Places: places}, &okResp{})
}

// Directory lists contributors.
func (c *BrokerClient) Directory(key auth.APIKey) ([]broker.ContributorInfo, error) {
	var resp directoryResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/directory", &keyReq{Key: key}, &resp); err != nil {
		return nil, err
	}
	return resp.Contributors, nil
}

// Connect provisions (or fetches) the consumer's credential for a
// contributor's store.
func (c *BrokerClient) Connect(key auth.APIKey, contributor string) (broker.Credential, error) {
	var resp broker.Credential
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/connect", &connectReq{Key: key, Contributor: contributor}, &resp); err != nil {
		return broker.Credential{}, err
	}
	return resp, nil
}

// Credentials fetches every vaulted credential.
func (c *BrokerClient) Credentials(key auth.APIKey) ([]broker.Credential, error) {
	var resp credentialsResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/credentials", &keyReq{Key: key}, &resp); err != nil {
		return nil, err
	}
	return resp.Credentials, nil
}

// Search runs a contributor search.
func (c *BrokerClient) Search(key auth.APIKey, q *broker.SearchQuery) ([]string, error) {
	wire := &searchWire{
		Key:            key,
		Sensors:        q.Sensors,
		LocationLabel:  q.LocationLabel,
		ActiveContexts: q.ActiveContexts,
	}
	if !q.Region.IsZero() {
		r := q.Region
		wire.Region = &r
	}
	if len(q.Contexts) > 0 {
		wire.Contexts = make(map[string]string, len(q.Contexts))
		for cat, lvl := range q.Contexts {
			wire.Contexts[string(cat)] = lvl.String()
		}
	}
	if !q.RepeatTime.IsZero() {
		wire.RepeatDay = q.RepeatTime.DayNames()
		from, to := q.RepeatTime.Window()
		if from != to {
			wire.RepeatHourMin = []string{from.String(), to.String()}
		}
	}
	if !q.TimeRange.Start.IsZero() {
		wire.TimeStart = q.TimeRange.Start.Format(time.RFC3339)
	}
	if !q.TimeRange.End.IsZero() {
		wire.TimeEnd = q.TimeRange.End.Format(time.RFC3339)
	}
	if !q.Reference.IsZero() {
		wire.Reference = q.Reference.Format(time.RFC3339)
	}
	var resp searchResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/search", wire, &resp); err != nil {
		return nil, err
	}
	return resp.Contributors, nil
}

// SaveList stores a named contributor list.
func (c *BrokerClient) SaveList(key auth.APIKey, name string, members []string) error {
	return doJSON(context.Background(), c.hc(), c.BaseURL, "/api/lists/save", &listSaveReq{Key: key, Name: name, Members: members}, &okResp{})
}

// List fetches a saved contributor list.
func (c *BrokerClient) List(key auth.APIKey, name string) ([]string, error) {
	var resp listGetResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/lists/get", &listGetReq{Key: key, Name: name}, &resp); err != nil {
		return nil, err
	}
	return resp.Members, nil
}

// CreateStudy declares a study.
func (c *BrokerClient) CreateStudy(name string) error {
	return doJSON(context.Background(), c.hc(), c.BaseURL, "/api/studies/create", &studyReq{Study: name}, &okResp{})
}

// JoinStudy adds the consumer to a study.
func (c *BrokerClient) JoinStudy(key auth.APIKey, study string) error {
	return doJSON(context.Background(), c.hc(), c.BaseURL, "/api/studies/join", &studyReq{Key: key, Study: study}, &okResp{})
}

// StudyMembers lists a study's members.
func (c *BrokerClient) StudyMembers(study string) ([]string, error) {
	var resp studyMembersResp
	if err := doJSON(context.Background(), c.hc(), c.BaseURL, "/api/studies/members", &studyReq{Study: study}, &resp); err != nil {
		return nil, err
	}
	return resp.Members, nil
}
