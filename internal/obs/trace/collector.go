package trace

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Collector retention defaults: enough traces for a debugging session,
// bounded hard so a busy server cannot grow without limit.
const (
	defaultMaxTraces  = 256
	defaultMaxSpans   = 512
	defaultSlowSpan   = 250 * time.Millisecond
	defaultListTraces = 100
)

// SpanData is the JSON form of one completed span.
type SpanData struct {
	TraceID    string         `json:"traceId"`
	SpanID     string         `json:"spanId"`
	ParentID   string         `json:"parentId,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"durationMs"`
	Status     string         `json:"status"`
	Error      string         `json:"error,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []EventData    `json:"events,omitempty"`
}

// EventData is the JSON form of one span event.
type EventData struct {
	Time  time.Time      `json:"time"`
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Summary describes one retained trace for the /debug/traces listing.
type Summary struct {
	TraceID string `json:"traceId"`
	// Root is the name of the trace's root span (parentless span with the
	// earliest start; a span whose parent never reported counts too).
	Root string `json:"root"`
	// Spans retained, and how many more were dropped by the per-trace cap.
	Spans     int `json:"spans"`
	Truncated int `json:"truncated,omitempty"`
	// DurationMS covers the earliest span start to the latest span end.
	DurationMS float64 `json:"durationMs"`
	// Errors counts spans that ended with status "error".
	Errors int `json:"errors"`
	// Interesting traces (an error or a slow span) survive eviction
	// longest — the collector always samples them.
	Interesting bool `json:"interesting"`
}

// bucket accumulates the spans of one trace as they complete. It holds
// the ended *Span values themselves — serialization to SpanData is
// deferred to the read path (/debug/traces, Trace, Traces), which keeps
// the per-span cost on the record hot path to a map lookup and an
// append.
type bucket struct {
	spans       []*Span
	truncated   int
	errors      int
	interesting bool
}

// Collector retains completed spans grouped by trace in a bounded ring:
// when full, the oldest *boring* trace is evicted first — traces with an
// errored span or a span at/over the slow threshold are always sampled
// and only fall out when everything retained is interesting. Spans
// report here on End; a Collector is safe for concurrent use.
type Collector struct {
	maxTraces int
	maxSpans  int
	slow      time.Duration

	mu sync.Mutex
	// guarded by mu
	traces map[TraceID]*bucket
	// guarded by mu
	order []TraceID // trace IDs, first-seen order
	// guarded by mu
	evicted uint64
}

// NewCollector builds a collector retaining up to maxTraces traces of up
// to maxSpans spans each, marking spans of slow or worse duration (and
// errored spans) as always-sample. Non-positive arguments pick the
// defaults (256 traces, 512 spans, 250ms).
func NewCollector(maxTraces, maxSpans int, slow time.Duration) *Collector {
	if maxTraces <= 0 {
		maxTraces = defaultMaxTraces
	}
	if maxSpans <= 0 {
		maxSpans = defaultMaxSpans
	}
	if slow <= 0 {
		slow = defaultSlowSpan
	}
	return &Collector{
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
		slow:      slow,
		traces:    make(map[TraceID]*bucket),
	}
}

// record files one ended span under its trace, evicting if needed. The
// span's outcome is passed in (End computed it under the span's lock),
// so the hot path never serializes or re-locks the span — everything a
// span allocated while live is reused as-is until a reader snapshots it.
func (c *Collector) record(s *Span, d time.Duration, failed bool) {
	interesting := failed || d >= c.slow
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.traces[s.sc.Trace]
	if b == nil {
		b = &bucket{}
		c.traces[s.sc.Trace] = b
		c.order = append(c.order, s.sc.Trace)
	}
	if len(b.spans) >= c.maxSpans {
		b.truncated++
	} else {
		b.spans = append(b.spans, s)
	}
	if failed {
		b.errors++
	}
	if interesting {
		b.interesting = true
	}
	for len(c.order) > c.maxTraces {
		c.evictLocked()
	}
}

// evictLocked drops the oldest boring trace, or the oldest trace
// outright when every retained trace is interesting. Callers hold mu.
func (c *Collector) evictLocked() {
	victim := 0
	for i, id := range c.order {
		if !c.traces[id].interesting {
			victim = i
			break
		}
	}
	id := c.order[victim]
	if victim == 0 {
		// The common case (the head is boring, or everything retained is
		// interesting): advance the head instead of shifting the slice.
		// append reclaims the dead prefix when the backing array fills.
		c.order = c.order[1:]
	} else {
		c.order = append(c.order[:victim], c.order[victim+1:]...)
	}
	delete(c.traces, id)
	c.evicted++
}

// spansLocked copies one bucket's span pointers. Callers hold mu.
func (b *bucket) spansLocked() []*Span {
	out := make([]*Span, len(b.spans))
	copy(out, b.spans)
	return out
}

// Trace returns JSON snapshots of the retained spans of one trace (id in
// 32-hex form), sorted by start time, nil when the trace is unknown.
func (c *Collector) Trace(id string) []*SpanData {
	var tid TraceID
	if len(id) != hex.EncodedLen(len(tid)) {
		return nil
	}
	if _, err := hex.Decode(tid[:], []byte(id)); err != nil {
		return nil
	}
	c.mu.Lock()
	b := c.traces[tid]
	var spans []*Span
	if b != nil {
		spans = b.spansLocked()
	}
	c.mu.Unlock()
	if spans == nil {
		return nil
	}
	out := make([]*SpanData, len(spans))
	for i, s := range spans {
		out[i] = s.snapshot()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Traces summarizes the retained traces, newest-first.
func (c *Collector) Traces() []Summary {
	type snap struct {
		id TraceID
		b  bucket
	}
	c.mu.Lock()
	snaps := make([]snap, 0, len(c.order))
	for i := len(c.order) - 1; i >= 0; i-- {
		id := c.order[i]
		b := c.traces[id]
		snaps = append(snaps, snap{id: id, b: bucket{
			spans:       b.spansLocked(),
			truncated:   b.truncated,
			errors:      b.errors,
			interesting: b.interesting,
		}})
	}
	c.mu.Unlock()
	out := make([]Summary, 0, len(snaps))
	for i := range snaps {
		out = append(out, summarize(snaps[i].id, &snaps[i].b))
	}
	return out
}

// Evicted reports how many traces were dropped by the retention policy.
func (c *Collector) Evicted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// Reset drops every retained trace (tests and benchmarks).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.traces = make(map[TraceID]*bucket)
	c.order = nil
	c.evicted = 0
	c.mu.Unlock()
}

// summarize condenses one (copied) bucket. Span clocks are one
// process's, so the min-start/max-end window is meaningful within a test
// or a single server and approximate across machines.
func summarize(id TraceID, b *bucket) Summary {
	s := Summary{
		TraceID:     id.String(),
		Spans:       len(b.spans),
		Truncated:   b.truncated,
		Errors:      b.errors,
		Interesting: b.interesting,
	}
	var minStart, maxEnd time.Time
	var rootStart time.Time
	known := make(map[SpanID]bool, len(b.spans))
	for _, sp := range b.spans {
		known[sp.sc.Span] = true
	}
	for _, sp := range b.spans {
		start, end := sp.window()
		if minStart.IsZero() || start.Before(minStart) {
			minStart = start
		}
		if maxEnd.IsZero() || end.After(maxEnd) {
			maxEnd = end
		}
		// Root candidate: no parent, or a parent that never reported here.
		if sp.parent.IsZero() || !known[sp.parent] {
			if rootStart.IsZero() || start.Before(rootStart) {
				rootStart = start
				s.Root = sp.name
			}
		}
	}
	if !minStart.IsZero() {
		s.DurationMS = float64(maxEnd.Sub(minStart).Microseconds()) / 1000
	}
	return s
}

// Handler serves the collector as JSON: GET /debug/traces lists trace
// summaries (newest first, capped at 100); ?id=<32 hex> returns the full
// span set of one trace. Only trace metadata crosses this endpoint —
// span attributes carry rule IDs and decision classes, never sensor
// payloads — and it is meant for operator/loopback exposure like
// /metrics and /debug/pprof.
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("id"); id != "" {
			spans := c.Trace(id)
			if spans == nil {
				http.Error(w, `{"error":"unknown trace"}`, http.StatusNotFound)
				return
			}
			_ = json.NewEncoder(w).Encode(struct {
				TraceID string      `json:"traceId"`
				Spans   []*SpanData `json:"spans"`
			}{TraceID: id, Spans: spans})
			return
		}
		sums := c.Traces()
		if len(sums) > defaultListTraces {
			sums = sums[:defaultListTraces]
		}
		_ = json.NewEncoder(w).Encode(struct {
			Traces []Summary `json:"traces"`
		}{Traces: sums})
	})
}

// defCollector is the process default every Start reports to unless the
// context overrides it; one default means an in-process test harness
// (client + broker + stores in one binary) sees whole cross-hop trees.
var defCollector atomic.Pointer[Collector]

func init() { defCollector.Store(NewCollector(0, 0, 0)) }

// Default returns the process-wide collector.
func Default() *Collector { return defCollector.Load() }

// SetDefault swaps the process-wide collector (tests).
func SetDefault(c *Collector) {
	if c != nil {
		defCollector.Store(c)
	}
}

// collectorKey overrides the collector for a context subtree.
type collectorKey struct{}

// WithCollector returns ctx routing spans started under it to c.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, collectorKey{}, c)
}

func collectorFrom(ctx context.Context) *Collector {
	if c, ok := ctx.Value(collectorKey{}).(*Collector); ok {
		return c
	}
	return Default()
}

// Handler serves the default collector's /debug/traces endpoint.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		Default().Handler().ServeHTTP(w, r)
	})
}
