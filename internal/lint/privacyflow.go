package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// PrivacyFlow polices SensorSafe's core guarantee — raw wave segments
// reach a consumer only through the rule match → dependency closure →
// abstraction pipeline — interprocedurally, over the module-wide call
// graph. It subsumes the retired intraprocedural releasepath analyzer.
//
// The taint model:
//
//   - Sources: raw-segment producers — every call into internal/storage
//     or internal/segstore (engine scans, block decodes), the
//     wavesegment decoders (byte → Segment), and wavesegment.Segment
//     composite literals outside the codec package.
//   - Sanitizers: the release pipeline — internal/abstraction
//     (Apply/Enforce return Release values) and internal/rules decisions.
//     Their results are clean by definition; that is the invariant the
//     rest of the analysis enforces.
//   - Sinks: consumer-facing egress — composite literals and field writes
//     of response-named struct shapes (*Resp/*Response/*Reply/*Event/
//     *Batch/*Result) in internal/httpapi, internal/stream, and
//     internal/federation, plus values handed to writeJSON.
//
// Any demonstrated source→sink path that does not cross a sanitizer is a
// finding, reported with the full call chain (a.go:12 → b.go:40 → ...).
// Per-function summaries (see summary.go) propagate taint through helper
// calls, interface dispatch (method-set matched implementations), and
// recursion (fixpoint over call-graph SCCs).
//
// Two coarse per-package rules from releasepath are retained verbatim:
// consumer-facing packages must not import internal/storage at all, and
// must not call raw storage accessors (datastore.Service.Storage, any
// storage.Store method). The single sanctioned raw egress, the owner-only
// /api/queryown handler, carries an //sslint:ignore privacyflow directive
// documenting why it is safe.
var PrivacyFlow = &Analyzer{
	Name:      "privacyflow",
	Doc:       "raw wave segments must not reach consumer egress without passing the abstraction release pipeline (interprocedural taint)",
	AppliesTo: privacyFlowApplies,
	Run:       runPrivacyFlow,
}

func privacyFlowApplies(modulePath, pkgPath string) bool {
	switch pkgPath {
	case modulePath + "/internal/httpapi",
		modulePath + "/internal/stream",
		modulePath + "/internal/federation":
		return true
	}
	return false
}

var responseTypeRe = regexp.MustCompile(`(Resp|Response|Reply|Event|Batch|Result)$`)

func runPrivacyFlow(pass *Pass) {
	// Per-package rules, identical to the retired releasepath analyzer.
	storagePath := pass.Module.Path + "/internal/storage"
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == storagePath {
				pass.Reportf(imp.Pos(),
					"consumer-facing package imports %s; raw segment storage is private to the datastore", storagePath)
			}
		}
	}
	inspectFuncs(pass.Pkg, func(n ast.Node, _ *ast.FuncDecl) {
		if call, ok := n.(*ast.CallExpr); ok {
			checkRawAccessor(pass, call, storagePath)
		}
	})

	// Interprocedural taint findings, computed once per run over the
	// analysis universe and attributed to packages by sink position.
	eng := pfEngineFor(pass)
	for _, f := range eng.findings[pass.Pkg] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
	if !eng.orphansDone {
		eng.orphansDone = true
		for _, f := range eng.orphans {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// checkRawAccessor flags calls that reach the raw segment substrate.
func checkRawAccessor(pass *Pass, call *ast.CallExpr, storagePath string) {
	fn, ok := calleeObj(pass.Pkg, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == storagePath {
		pass.Reportf(call.Pos(),
			"call to storage.%s bypasses the abstraction release pipeline", fn.Name())
		return
	}
	if fn.Name() == "Storage" && fn.Pkg().Path() == pass.Module.Path+"/internal/datastore" {
		pass.Reportf(call.Pos(),
			"datastore.Storage() exposes the raw segment store; consumer-facing code must use the release pipeline (Query/abstraction.Release)")
	}
}

// engFinding is one engine-produced finding, attributed to a package and
// reported by that package's pass.
type engFinding struct {
	pos token.Pos
	msg string
}

// pfEngine runs the interprocedural taint analysis once per analyzer run.
type pfEngine struct {
	m *Module
	g *CallGraph

	summaries map[*types.Func]*pfSummary
	envs      map[*CGNode]*pfEnv
	carryMemo map[types.Type]bool

	findings map[*Package][]engFinding
	// orphans are findings in packages the analyzer is not scheduled on
	// (a non-consumer package building a consumer response shape); the
	// first pass of the run reports them.
	orphans     []engFinding
	orphansDone bool
}

// pfEngineFor builds (or fetches from the run's shared State) the taint
// engine over pass.Universe.
func pfEngineFor(pass *Pass) *pfEngine {
	if eng, ok := pass.State["privacyflow.engine"].(*pfEngine); ok {
		return eng
	}
	universe := pass.Universe
	if len(universe) == 0 {
		universe = []*Package{pass.Pkg}
	}
	eng := &pfEngine{
		m:         pass.Module,
		g:         pass.Module.CallGraphFor(universe),
		summaries: make(map[*types.Func]*pfSummary),
		envs:      make(map[*CGNode]*pfEnv),
		carryMemo: make(map[types.Type]bool),
		findings:  make(map[*Package][]engFinding),
	}
	eng.g.Fixpoint(eng.summarize)
	eng.report()
	pass.State["privacyflow.engine"] = eng
	return eng
}

// carries reports whether a value of type t can transport raw segment
// data: the Segment type itself, containers of it, and struct shapes
// with a segment-carrying field (transitively). Interfaces, function
// types, and basic types do not carry — the model is optimistic, and
// treating every interface value as a potential segment container would
// taint engine handles (storage.Engine) and the service objects built
// around them, flooding cmd/ wiring with phantom flows.
func (eng *pfEngine) carries(t types.Type) bool {
	return eng.carriesRec(t, nil)
}

func (eng *pfEngine) carriesRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return true // no type info: keep the taint rather than guess
	}
	if v, ok := eng.carryMemo[t]; ok {
		return v
	}
	top := seen == nil
	if top {
		seen = make(map[types.Type]bool)
	} else if seen[t] {
		return false // recursive shape: segments, if any, surface elsewhere
	}
	seen[t] = true
	v := false
	switch tt := t.(type) {
	case *types.Named:
		v = isSegmentTypeM(eng.m, tt) || eng.carriesRec(tt.Underlying(), seen)
	case *types.Pointer:
		v = eng.carriesRec(tt.Elem(), seen)
	case *types.Slice:
		v = eng.carriesRec(tt.Elem(), seen)
	case *types.Array:
		v = eng.carriesRec(tt.Elem(), seen)
	case *types.Chan:
		v = eng.carriesRec(tt.Elem(), seen)
	case *types.Map:
		v = eng.carriesRec(tt.Key(), seen) || eng.carriesRec(tt.Elem(), seen)
	case *types.Tuple:
		for i := 0; i < tt.Len() && !v; i++ {
			v = eng.carriesRec(tt.At(i).Type(), seen)
		}
	case *types.Struct:
		for i := 0; i < tt.NumFields() && !v; i++ {
			v = eng.carriesRec(tt.Field(i).Type(), seen)
		}
	}
	// true is sound to cache unconditionally; false may be an artifact of
	// the cycle guard, so cache it only for a fully-explored root query.
	if v || top {
		eng.carryMemo[t] = v
	}
	return v
}

// axiomPackage reports whether the package's behavior is modeled by the
// source/sanitizer axioms rather than by summarizing its bodies.
func (eng *pfEngine) axiomPackage(path string) bool {
	for _, p := range []string{"storage", "segstore", "abstraction", "rules", "wavesegment"} {
		if path == eng.m.Path+"/internal/"+p {
			return true
		}
	}
	return false
}

// summarize is the fixpoint update: recompute the node's dataflow summary
// and report whether it grew.
func (eng *pfEngine) summarize(node *CGNode) bool {
	if node.Decl.Body == nil || eng.axiomPackage(node.Pkg.Path) {
		return false
	}
	env := eng.envFor(node)
	sum := eng.summaries[node.Fn]
	if sum == nil {
		sum = newPFSummary()
		eng.summaries[node.Fn] = sum
	}
	before := len(sum.result.flows) + len(sum.result.params) + len(sum.paramSinks)

	// param→return: union the taint of every returned expression.
	collectReturns(node.Decl.Body, func(ret *ast.ReturnStmt) {
		if len(ret.Results) == 0 {
			for _, v := range env.named {
				sum.result.union(env.evalVar(v, make(map[*types.Var]bool)))
			}
			return
		}
		for _, r := range ret.Results {
			sum.result.union(env.eval(r, make(map[*types.Var]bool)))
		}
	})

	// param→sink, direct: a parameter's value placed into an egress sink
	// in this body.
	for _, s := range eng.sinksIn(env) {
		t := env.eval(s.value, make(map[*types.Var]bool))
		for idx := range t.params {
			if sum.paramSinks[idx] == nil {
				sum.paramSinks[idx] = &pfSinkPath{steps: []token.Pos{s.pos}, desc: s.desc, pkg: node.Pkg}
			}
		}
	}
	// param→sink, transitive: a parameter passed onward to a callee that
	// sinks it.
	for i := range node.Sites {
		site := &node.Sites[i]
		for _, tgt := range site.Targets {
			tsum := eng.summaries[tgt.Fn]
			if tsum == nil {
				continue
			}
			for idx, sp := range tsum.paramSinks {
				for _, arg := range argExprs(site.Call, tgt.Fn, idx) {
					at := env.eval(arg, make(map[*types.Var]bool))
					for p := range at.params {
						if sum.paramSinks[p] == nil {
							steps := append([]token.Pos{site.Pos}, sp.steps...)
							sum.paramSinks[p] = &pfSinkPath{steps: steps, desc: sp.desc, pkg: sp.pkg}
						}
					}
				}
			}
		}
	}
	return len(sum.result.flows)+len(sum.result.params)+len(sum.paramSinks) > before
}

// pfSink is one egress sink occurrence in a function body.
type pfSink struct {
	value ast.Expr
	pos   token.Pos
	desc  string
}

// sinkPackage reports whether path is a consumer-facing egress package
// (or a test fixture standing in for one).
func (eng *pfEngine) sinkPackage(path string) bool {
	switch path {
	case eng.m.Path + "/internal/httpapi",
		eng.m.Path + "/internal/stream",
		eng.m.Path + "/internal/federation":
		return true
	}
	return strings.HasPrefix(path, "fixture/")
}

// sinksIn collects the egress sinks of one function body: segment-typed
// values placed into response-named composite literals, assigned to
// response-typed fields, or handed to writeJSON.
func (eng *pfEngine) sinksIn(env *pfEnv) []pfSink {
	node := env.node
	info := node.Pkg.Info
	var sinks []pfSink
	consider := func(owner types.Type, val ast.Expr) {
		t := info.Types[val].Type
		if !isSegmentTypeM(eng.m, t) {
			return
		}
		sinks = append(sinks, pfSink{value: val, pos: val.Pos(), desc: typeShort(owner)})
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			t := info.Types[x].Type
			if !eng.responseSink(node.Pkg.Path, t) {
				return true
			}
			for _, elt := range x.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				consider(t, val)
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || i >= len(x.Rhs) {
					continue
				}
				owner := info.Types[sel.X].Type
				if eng.responseSink(node.Pkg.Path, owner) {
					consider(owner, x.Rhs[i])
				}
			}
		case *ast.CallExpr:
			if fn, ok := calleeObj(node.Pkg, x).(*types.Func); ok &&
				fn.Name() == "writeJSON" && len(x.Args) > 0 {
				arg := x.Args[len(x.Args)-1]
				if isSegmentTypeM(eng.m, info.Types[arg].Type) {
					sinks = append(sinks, pfSink{value: arg, pos: arg.Pos(), desc: "writeJSON"})
				}
			}
		}
		return true
	})
	return sinks
}

// responseSink reports whether t is a response-named struct shape that
// counts as egress here: either the enclosing package or the type's own
// package must be consumer-facing.
func (eng *pfEngine) responseSink(enclosingPkg string, t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return false
	}
	if !responseTypeRe.MatchString(named.Obj().Name()) {
		return false
	}
	if eng.sinkPackage(enclosingPkg) {
		return true
	}
	return named.Obj().Pkg() != nil && eng.sinkPackage(named.Obj().Pkg().Path())
}

// report walks every function once after the fixpoint and materializes
// findings: tainted values at direct sinks, and tainted arguments passed
// into callees that sink the parameter.
func (eng *pfEngine) report() {
	nodes := make([]*CGNode, 0, len(eng.g.Nodes))
	for _, n := range eng.g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })

	type dedupKey struct {
		src, sink token.Pos
	}
	seen := make(map[dedupKey]bool)
	emit := func(pkg *Package, pos token.Pos, src *pfFlow, chain []token.Pos, sinkDesc string) {
		k := dedupKey{src.src, chain[len(chain)-1]}
		if seen[k] {
			return
		}
		seen[k] = true
		f := engFinding{pos: pos, msg: "raw segment from " + src.desc +
			" flows into consumer response " + sinkDesc +
			" without passing the abstraction release pipeline; path: " + fmtChain(eng.m, chain)}
		if privacyFlowApplies(eng.m.Path, pkg.Path) || strings.HasPrefix(pkg.Path, "fixture/") {
			eng.findings[pkg] = append(eng.findings[pkg], f)
		} else {
			eng.orphans = append(eng.orphans, f)
		}
	}

	for _, node := range nodes {
		if node.Decl.Body == nil || eng.axiomPackage(node.Pkg.Path) {
			continue
		}
		env := eng.envFor(node)
		for _, s := range eng.sinksIn(env) {
			t := env.eval(s.value, make(map[*types.Var]bool))
			for _, fl := range sortedFlows(t) {
				chain := append(append([]token.Pos{}, fl.steps...), s.pos)
				emit(node.Pkg, s.pos, fl, chain, s.desc)
			}
		}
		for i := range node.Sites {
			site := &node.Sites[i]
			for _, tgt := range site.Targets {
				tsum := eng.summaries[tgt.Fn]
				if tsum == nil {
					continue
				}
				for idx, sp := range tsum.paramSinks {
					for _, arg := range argExprs(site.Call, tgt.Fn, idx) {
						at := env.eval(arg, make(map[*types.Var]bool))
						for _, fl := range sortedFlows(at) {
							chain := append(append([]token.Pos{}, fl.steps...), site.Pos)
							chain = append(chain, sp.steps...)
							// Report at the sink itself, attributed to the
							// sink's package, so a directive at the egress
							// line suppresses every inbound path.
							emit(sp.pkg, chain[len(chain)-1], fl, chain, sp.desc)
						}
					}
				}
			}
		}
	}
}

func sortedFlows(t pfTaint) []*pfFlow {
	out := make([]*pfFlow, 0, len(t.flows))
	for _, f := range t.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].src < out[j].src })
	return out
}

// isSegmentTypeM reports whether t is *wavesegment.Segment or a slice of
// (pointers to) it.
func isSegmentTypeM(m *Module, t types.Type) bool {
	switch tt := t.(type) {
	case *types.Slice:
		return isSegmentTypeM(m, tt.Elem())
	case *types.Pointer:
		return isSegmentTypeM(m, tt.Elem())
	case *types.Named:
		obj := tt.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == m.Path+"/internal/wavesegment" &&
			obj.Name() == "Segment"
	}
	return false
}

// isSegmentStruct reports whether t is the wavesegment.Segment struct
// type itself (not a container of it).
func isSegmentStruct(m *Module, t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == m.Path+"/internal/wavesegment" &&
		obj.Name() == "Segment"
}

func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
