package segstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

// mkTimedSeg builds an aperiodic segment (explicit per-sample
// timestamps, jittered spacing) — the flagRecTimed encoding path.
func mkTimedSeg(contributor string, off time.Duration, n int) *wavesegment.Segment {
	s := mkSeg(contributor, off, n)
	s.Interval = 0
	for i := 0; i < n; i++ {
		s.Timestamps = append(s.Timestamps,
			s.Start.Add(time.Duration(i)*time.Second+time.Duration(i*7)*time.Millisecond))
	}
	return s
}

// writeTestFile writes recs through a segWriter and returns the meta.
func writeTestFile(t *testing.T, dir string, recs []rec) fileMeta {
	t.Helper()
	w, err := newSegWriter(dir, "seg-test.seg", 0)
	if err != nil {
		t.Fatalf("newSegWriter: %v", err)
	}
	for _, r := range recs {
		if err := w.add(r); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	meta, err := w.finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return meta
}

func readAllRecs(t *testing.T, r *segReader) []rec {
	t.Helper()
	var out []rec
	for i := range r.blocks {
		recs, err := r.readBlock(i)
		if err != nil {
			t.Fatalf("readBlock(%d): %v", i, err)
		}
		out = append(out, recs...)
	}
	return out
}

// TestSegfileRoundTrip writes periodic, aperiodic, annotated, and
// multi-channel records across two contributors (enough for multiple
// blocks) and verifies every record decodes back bit-identical.
func TestSegfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var recs []rec
	id := storage.ID(1)
	add := func(s *wavesegment.Segment) {
		recs = append(recs, rec{id: id, seg: s})
		id++
	}
	// More than one block's worth of records for "alice" forces several
	// blocks.
	for i := 0; i < blockRecords+8; i++ {
		add(mkSeg("alice", time.Duration(i*100)*time.Second, 6, "hr", "gsr"))
	}
	for i := 0; i < 5; i++ {
		add(mkTimedSeg("bob", time.Duration(i*100)*time.Second, 4))
	}
	annotated := mkSeg("bob", 10000*time.Second, 8)
	if err := annotated.Annotate("Walk", annotated.Start, annotated.Start.Add(3*time.Second)); err != nil {
		t.Fatalf("annotate: %v", err)
	}
	if err := annotated.Annotate("Run", annotated.Start.Add(3*time.Second), annotated.Start.Add(8*time.Second)); err != nil {
		t.Fatalf("annotate: %v", err)
	}
	add(annotated)

	meta := writeTestFile(t, dir, recs)
	if meta.Records != len(recs) {
		t.Fatalf("meta.Records = %d want %d", meta.Records, len(recs))
	}
	if meta.MinID != 1 || meta.MaxID != uint64(len(recs)) {
		t.Fatalf("meta ID bounds [%d,%d] want [1,%d]", meta.MinID, meta.MaxID, len(recs))
	}
	if meta.MinTime != t0.UnixNano() {
		t.Fatalf("meta.MinTime = %d want %d", meta.MinTime, t0.UnixNano())
	}
	if meta.RawBytes <= meta.Bytes {
		t.Fatalf("columnar+flate did not compress: raw %d <= file %d", meta.RawBytes, meta.Bytes)
	}

	r, err := openSegReader(dir, meta)
	if err != nil {
		t.Fatalf("openSegReader: %v", err)
	}
	defer r.markObsolete()
	if len(r.byContrib["alice"]) < 2 {
		t.Fatalf("alice should span multiple blocks, got %d", len(r.byContrib["alice"]))
	}
	got := make(map[storage.ID]string)
	for _, rc := range readAllRecs(t, r) {
		got[rc.id] = blob(t, rc.seg)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for _, rc := range recs {
		if got[rc.id] != blob(t, rc.seg) {
			t.Fatalf("record %d did not round trip", rc.id)
		}
	}
}

// TestSegfileBlockCorruptionDetected flips one byte inside a data
// block: the footer still validates, but reading the block must fail
// its CRC check rather than decode garbage.
func TestSegfileBlockCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	var recs []rec
	for i := 0; i < 10; i++ {
		recs = append(recs, rec{id: storage.ID(i + 1), seg: mkSeg("alice", time.Duration(i*100)*time.Second, 6)})
	}
	meta := writeTestFile(t, dir, recs)
	r, err := openSegReader(dir, meta)
	if err != nil {
		t.Fatalf("openSegReader: %v", err)
	}
	defer r.markObsolete()

	path := filepath.Join(dir, meta.Name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read file: %v", err)
	}
	data[r.blocks[0].offset+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatalf("rewrite file: %v", err)
	}
	// The open reader holds the old inode; reopen to see the corruption.
	r2, err := openSegReader(dir, meta)
	if err != nil {
		t.Fatalf("openSegReader after block corruption: %v (footer should still be valid)", err)
	}
	defer r2.markObsolete()
	if _, err := r2.readBlock(0); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted block read: got %v, want CRC mismatch", err)
	}
}

// TestSegfileTornFileDetected covers torn-write shapes a crash can
// leave: a truncated file, a clobbered trailer, and a bad header must
// all fail openSegReader explicitly.
func TestSegfileTornFileDetected(t *testing.T) {
	dir := t.TempDir()
	meta := writeTestFile(t, dir, []rec{{id: 1, seg: mkSeg("alice", 0, 6)}})
	path := filepath.Join(dir, meta.Name)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read file: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-3] }},
		{"clobbered trailer", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			copy(c[len(c)-len(segFootMagic):], "XXXX")
			return c
		}},
		{"bad header", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		}},
		{"corrupt footer", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-segTrailerLen-2] ^= 0xff
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mutate(pristine), 0o600); err != nil {
				t.Fatalf("mutate: %v", err)
			}
			if _, err := openSegReader(dir, meta); err == nil {
				t.Fatal("openSegReader accepted a torn file")
			}
		})
	}
}

// TestDiskIterPruning checks the sparse-index fast paths: windows
// entirely before or after the data decode nothing.
func TestDiskIterPruning(t *testing.T) {
	dir := t.TempDir()
	total := blockRecords * 2
	var recs []rec
	for i := 0; i < total; i++ { // two blocks
		recs = append(recs, rec{id: storage.ID(i + 1), seg: mkSeg("alice", time.Duration(i*100)*time.Second, 6)})
	}
	meta := writeTestFile(t, dir, recs)
	r, err := openSegReader(dir, meta)
	if err != nil {
		t.Fatalf("openSegReader: %v", err)
	}
	defer r.markObsolete()

	count := func(from, to time.Time) int {
		it := newDiskIter(r, "alice", from, to)
		n := 0
		for {
			_, ok, err := it.next()
			if err != nil {
				t.Fatalf("next: %v", err)
			}
			if !ok {
				return n
			}
			n++
		}
	}
	if got := count(time.Time{}, time.Time{}); got != total {
		t.Fatalf("unbounded iteration saw %d records, want %d", got, total)
	}
	if got := count(t0.Add(time.Duration(total*100+1000)*time.Second), time.Time{}); got != 0 {
		t.Fatalf("window after all data decoded %d records", got)
	}
	if got := count(time.Time{}, t0.Add(-time.Hour)); got != 0 {
		t.Fatalf("window before all data decoded %d records", got)
	}
	// A window inside the second block must not decode more than the
	// blocks that can overlap it (block granularity, filtered later by
	// Query.Matches).
	mid := (blockRecords + blockRecords/2) * 100
	if got := count(t0.Add(time.Duration(mid)*time.Second), t0.Add(time.Duration(mid+100)*time.Second)); got == 0 || got > blockRecords {
		t.Fatalf("narrow window decoded %d records", got)
	}
}
