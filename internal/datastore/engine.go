package datastore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"sensorsafe/internal/segstore"
	"sensorsafe/internal/storage"
)

// openEngine picks the segment backend: persistent services get the
// columnar LSM engine (internal/segstore); in-memory services (and
// callers explicitly pinning LegacyStorage for comparison) keep the
// flat in-memory index.
func openEngine(opts Options) (storage.Engine, error) {
	if opts.Dir == "" || opts.LegacyStorage {
		return storage.Open(opts.Dir)
	}
	dir := opts.SegstoreDir
	if dir == "" {
		dir = filepath.Join(opts.Dir, "segstore")
	}
	eng, err := segstore.Open(segstore.Options{
		Dir:               dir,
		MemtableBytes:     opts.MemtableBytes,
		CompactInterval:   opts.CompactInterval,
		MaxSegmentSamples: opts.MaxSegmentSamples,
	})
	if err != nil {
		return nil, err
	}
	if err := migrateLegacyWAL(opts.Dir, eng); err != nil {
		eng.Close()
		return nil, err
	}
	return eng, nil
}

// migrateLegacyWAL is the one-time upgrade path: a directory created by
// the old engine holds every segment in a flat segments.wal. Replay it
// into the segstore, flush, and rename the old log aside so segments
// are never held in two places (the bugfix half of the engine swap —
// previously the monolithic WAL duplicated everything in memory).
func migrateLegacyWAL(dir string, eng *segstore.Store) error {
	legacy := filepath.Join(dir, "segments.wal")
	if _, err := os.Stat(legacy); errors.Is(err, os.ErrNotExist) {
		return nil
	}
	old, err := storage.Open(dir)
	if err != nil {
		return fmt.Errorf("datastore: open legacy store for migration: %w", err)
	}
	results, err := old.ScanRefs(storage.Query{})
	if err != nil {
		old.Close()
		return err
	}
	for _, r := range results {
		if _, err := eng.Put(r.Segment); err != nil {
			old.Close()
			return fmt.Errorf("datastore: migrate segment %d: %w", r.ID, err)
		}
	}
	if err := old.Close(); err != nil {
		return err
	}
	// Land the migrated records in segment files before retiring the
	// legacy log, so a crash in between leaves one authoritative copy.
	if err := eng.Flush(); err != nil {
		return err
	}
	if err := os.Rename(legacy, legacy+".migrated"); err != nil {
		return fmt.Errorf("datastore: retire legacy wal: %w", err)
	}
	return nil
}
