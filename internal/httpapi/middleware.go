package httpapi

import (
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"sensorsafe/internal/obs"
)

// requestIDHeader carries the correlation ID between SensorSafe services;
// the middleware generates one when absent and always echoes it back.
const requestIDHeader = "X-Request-ID"

// HTTP-layer metrics, shared by both servers and split by component.
var (
	metricHTTPRequests = obs.NewCounterVec("sensorsafe_http_requests_total",
		"HTTP requests served, by component, method, route, and status.",
		"component", "method", "route", "status")
	metricHTTPLatency = obs.NewHistogramVec("sensorsafe_http_request_seconds",
		"HTTP request latency in seconds, by component and route.",
		obs.DefBuckets, "component", "route")
	metricHTTPInFlight = obs.NewGaugeVec("sensorsafe_http_in_flight_requests",
		"HTTP requests currently being served, by component.", "component")
)

// logDest is where request logs are written (test seam; servers log to
// stderr).
var logDest io.Writer = os.Stderr

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers (SSE) keep
// working through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withObs wraps a server mux with the observability middleware: method/
// route/status counters, an in-flight gauge, latency histograms, request
// logging, and X-Request-ID generation + propagation. Routes are taken
// from the mux's registered patterns so metric cardinality stays bounded
// no matter what paths clients probe.
func withObs(component string, mux *http.ServeMux) http.Handler {
	logger := obs.NewLogger(component, logDest)
	inFlight := metricHTTPInFlight.With(component)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), id)
		w.Header().Set(requestIDHeader, id)

		route := "unmatched"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		inFlight.Inc()
		mux.ServeHTTP(sw, r.WithContext(ctx))
		inFlight.Dec()

		elapsed := time.Since(start)
		metricHTTPRequests.With(component, r.Method, route, strconv.Itoa(sw.status)).Inc()
		metricHTTPLatency.With(component, route).Observe(elapsed.Seconds())
		logger.Info("request",
			"request_id", id,
			"method", r.Method,
			"route", route,
			"status", sw.status,
			"duration_ms", float64(elapsed.Microseconds())/1000)
	})
}
