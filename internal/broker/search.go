package broker

import (
	"context"
	"fmt"
	"sort"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/obs"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
)

// metricSearches counts contributor searches; pair it with the
// broker.search span histogram for latency.
var metricSearches = obs.NewCounter("sensorsafe_broker_searches_total",
	"Contributor searches evaluated against replicated rules.")

// SearchQuery describes the data a consumer needs, so the broker can find
// contributors whose privacy rules would actually release it (paper §5.2:
// "finding data contributors who share ECG and respiration sensor data at
// the location labeled 'work' from 9am to 6pm on weekdays").
type SearchQuery struct {
	// Sensors that must be shared as raw data.
	Sensors []string `json:"sensors,omitempty"`
	// Contexts maps a category to the coarsest acceptable level; e.g.
	// {Stress: LevelBinary} accepts Raw or Binary but not NotShared.
	Contexts map[rules.Category]rules.Level `json:"contexts,omitempty"`
	// LocationLabel evaluates the rules at the contributor's own labeled
	// place ("work", "home"); contributors lacking the label do not match.
	LocationLabel string `json:"locationLabel,omitempty"`
	// Region evaluates the rules inside an explicit area instead.
	Region geo.Rect `json:"region,omitempty"`
	// RepeatTime restricts the probe instants to a weekly window.
	RepeatTime timeutil.Repeated `json:"-"`
	// TimeRange restricts the probe instants to an absolute range.
	TimeRange timeutil.Range `json:"-"`
	// ActiveContexts probe the rules under specific behavioural contexts
	// (e.g. find contributors who share stress data *while driving*).
	ActiveContexts []string `json:"activeContexts,omitempty"`
	// Reference anchors probe-time generation (now() when zero) so search
	// results are reproducible.
	Reference time.Time `json:"reference,omitempty"`
}

// Validate checks the query.
func (q *SearchQuery) Validate() error {
	for _, s := range q.Sensors {
		if s == "" {
			return fmt.Errorf("broker: empty sensor in search")
		}
	}
	for cat, lvl := range q.Contexts {
		if !rules.ValidLevel(cat, lvl) {
			return fmt.Errorf("broker: invalid level %v for %s", lvl, cat)
		}
	}
	for _, c := range q.ActiveContexts {
		if _, err := rules.ParseContextLabel(c); err != nil {
			return err
		}
	}
	if !q.Region.IsZero() && !q.Region.Valid() {
		return fmt.Errorf("broker: invalid search region")
	}
	return nil
}

// SearchHit pairs a matched contributor with the store holding their
// data, so a consumer (or the federation engine) can fan out queries to
// the stores without a Directory round-trip per hit.
type SearchHit struct {
	Contributor string `json:"contributor"`
	StoreAddr   string `json:"storeAddr"`
}

// Search returns the names of contributors whose replicated rules release
// everything the query demands to this consumer, sorted. A contributor
// matches when at least one probe location passes at every probe instant.
func (s *Service) Search(key auth.APIKey, q *SearchQuery) ([]string, error) {
	return s.SearchCtx(context.Background(), key, q)
}

// SearchCtx is Search carrying the caller's context for span correlation.
func (s *Service) SearchCtx(ctx context.Context, key auth.APIKey, q *SearchQuery) ([]string, error) {
	hits, err := s.SearchInfoCtx(ctx, key, q)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(hits))
	for i, h := range hits {
		names[i] = h.Contributor
	}
	return names, nil
}

// SearchInfo is Search with store addresses: it returns {contributor,
// storeAddr} pairs sorted by contributor, the one-call resolution path
// federated cohort queries are built on.
func (s *Service) SearchInfo(key auth.APIKey, q *SearchQuery) ([]SearchHit, error) {
	return s.SearchInfoCtx(context.Background(), key, q)
}

// SearchInfoCtx is SearchInfo carrying the caller's context, so the
// broker.search span joins the request trace and HTTP handlers propagate
// their deadline.
func (s *Service) SearchInfoCtx(ctx context.Context, key auth.APIKey, q *SearchQuery) ([]SearchHit, error) {
	defer obs.Time(ctx, "broker.search")()
	metricSearches.Inc()
	u, e, err := s.authConsumer(key)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	groups := append([]string(nil), e.groups...)
	var matched []SearchHit
	for _, ce := range s.contributors {
		if ce.decider() == nil {
			continue // no rules replicated yet: default deny
		}
		if s.contributorMatches(ce, u.Name, groups, q) {
			matched = append(matched, SearchHit{Contributor: ce.name, StoreAddr: ce.storeAddr})
		}
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].Contributor < matched[j].Contributor })
	return matched, nil
}

// contributorMatches probes one contributor's replicated rule set via its
// compiled index — cohort fan-out evaluates every contributor at several
// probe points, so the memoized cache pays off across repeated searches.
func (s *Service) contributorMatches(ce *contributorEntry, consumer string, groups []string, q *SearchQuery) bool {
	locations := probeLocations(ce, q)
	if len(locations) == 0 {
		return false
	}
	instants := probeInstants(q)
	if len(instants) == 0 {
		return false
	}
	decider := ce.decider()
	sensors := rules.ExpandSensorNames(q.Sensors)
	for _, loc := range locations {
		allOK := true
		for _, at := range instants {
			d := decider.Decide(&rules.Request{
				Consumer:       consumer,
				ConsumerGroups: groups,
				At:             at,
				Location:       loc,
				ActiveContexts: q.ActiveContexts,
			})
			if !decisionSatisfies(d, sensors, q.Contexts) {
				allOK = false
				break
			}
		}
		if allOK {
			return true
		}
	}
	return false
}

func decisionSatisfies(d *rules.Decision, sensors []string, contexts map[rules.Category]rules.Level) bool {
	for _, ch := range sensors {
		if !d.ChannelShared(ch) {
			return false
		}
	}
	for cat, coarsest := range contexts {
		if d.ContextLevel(cat).CoarserThan(coarsest) {
			return false
		}
	}
	if len(sensors) == 0 && len(contexts) == 0 {
		return d.SharesAnything()
	}
	return true
}

// probeLocations picks the coordinates at which to evaluate the rules.
func probeLocations(ce *contributorEntry, q *SearchQuery) []geo.Point {
	if q.LocationLabel != "" {
		rg, ok := ce.gazetteer.Lookup(q.LocationLabel)
		if !ok {
			return nil
		}
		return []geo.Point{rg.Bounds().Center()}
	}
	if !q.Region.IsZero() {
		return []geo.Point{q.Region.Center()}
	}
	// No location constraint: the contributor matches if the rules release
	// the data either somewhere labeled or anywhere at all; probe each
	// labeled place and one unlabeled point.
	var pts []geo.Point
	for _, label := range ce.gazetteer.Labels() {
		if rg, ok := ce.gazetteer.Lookup(label); ok {
			pts = append(pts, rg.Bounds().Center())
		}
	}
	pts = append(pts, geo.Point{Lat: 0, Lon: 0})
	return pts
}

// probeInstants picks the instants at which to evaluate the rules: several
// samples inside the requested weekly window and/or absolute range. With no
// time constraint a single reference instant is used.
func probeInstants(q *SearchQuery) []time.Time {
	ref := q.Reference
	if ref.IsZero() {
		ref = now()
	}
	if !q.TimeRange.Start.IsZero() && ref.Before(q.TimeRange.Start) {
		ref = q.TimeRange.Start
	}

	inRange := func(t time.Time) bool {
		return q.TimeRange.IsZero() || q.TimeRange.Contains(t)
	}
	if q.RepeatTime.IsZero() {
		if !q.TimeRange.IsZero() {
			// Sample the range at start, middle, and just before end.
			start, end := q.TimeRange.Start, q.TimeRange.End
			if start.IsZero() {
				start = ref
			}
			if end.IsZero() {
				return []time.Time{start}
			}
			mid := start.Add(end.Sub(start) / 2)
			last := end.Add(-time.Minute)
			var out []time.Time
			for _, t := range []time.Time{start, mid, last} {
				if inRange(t) {
					out = append(out, t)
				}
			}
			return out
		}
		return []time.Time{ref}
	}
	// Walk up to 14 days from the reference, collecting the midpoint of
	// each matching daily window.
	from, to := q.RepeatTime.Window()
	var out []time.Time
	day := time.Date(ref.Year(), ref.Month(), ref.Day(), 0, 0, 0, 0, ref.Location())
	for i := 0; i < 14 && len(out) < 3; i++ {
		var candidate time.Time
		switch {
		case from == to: // whole-day window
			candidate = day.Add(12 * time.Hour)
		case to < from: // wraps midnight: probe at window start
			candidate = day.Add(time.Duration(from) * time.Minute)
		default:
			candidate = day.Add(time.Duration((from+to)/2) * time.Minute)
		}
		if q.RepeatTime.Contains(candidate) && !candidate.Before(ref) && inRange(candidate) {
			out = append(out, candidate)
		}
		day = day.AddDate(0, 0, 1)
	}
	return out
}
