package ruleindex

import (
	"sort"
	"time"

	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
)

// hoursPerWeek is the size of the recurring-window wheel: one bucket per
// hour of the week (day-of-week × hour-of-day).
const hoursPerWeek = 7 * 24

// interval is one absolute rule time range. Zero Start/End mean unbounded,
// exactly as in timeutil.Range.
type interval struct {
	start time.Time
	end   time.Time
	rule  int32
}

// containsAt mirrors timeutil.Range.Contains for the half-open [start, end)
// with unbounded zero sides.
func (iv interval) containsAt(t time.Time) bool {
	if !iv.start.IsZero() && t.Before(iv.start) {
		return false
	}
	if !iv.end.IsZero() && !t.Before(iv.end) {
		return false
	}
	return true
}

// subMax is the maximum interval end inside an implicit-BST subtree;
// unbounded dominates every bounded end.
type subMax struct {
	unbounded bool
	end       time.Time
}

func (m subMax) after(t time.Time) bool { return m.unbounded || t.Before(m.end) }

// intervalTree is a static stab-query structure over the rule set's
// absolute time ranges: the intervals sorted by start form an implicit
// balanced BST (midpoint recursion), each node annotated with its
// subtree's maximum end. A stab descends only into subtrees that can still
// contain the instant, so sparse queries skip most of the ranges.
type intervalTree struct {
	nodes []interval // sorted by start, unbounded starts first
	max   []subMax   // max[i] = subtree max end for the node at index i
}

func newIntervalTree(ivs []interval) *intervalTree {
	if len(ivs) == 0 {
		return &intervalTree{}
	}
	sort.SliceStable(ivs, func(i, j int) bool {
		a, b := ivs[i].start, ivs[j].start
		if a.IsZero() || b.IsZero() {
			return a.IsZero() && !b.IsZero()
		}
		return a.Before(b)
	})
	t := &intervalTree{nodes: ivs, max: make([]subMax, len(ivs))}
	t.build(0, len(ivs))
	return t
}

// build computes subtree max-ends over the implicit BST rooted at the
// midpoint of [lo, hi).
func (t *intervalTree) build(lo, hi int) subMax {
	if lo >= hi {
		return subMax{end: time.Time{}}
	}
	mid := (lo + hi) / 2
	m := subMax{unbounded: t.nodes[mid].end.IsZero(), end: t.nodes[mid].end}
	for _, side := range [2]subMax{t.build(lo, mid), t.build(mid+1, hi)} {
		if side.unbounded {
			m.unbounded = true
		} else if !m.unbounded && side.end.After(m.end) {
			m.end = side.end
		}
	}
	t.max[mid] = m
	return t.max[mid]
}

// stab marks every interval containing at.
func (t *intervalTree) stab(at time.Time, out bitset) {
	t.stabRange(0, len(t.nodes), at, out)
}

func (t *intervalTree) stabRange(lo, hi int, at time.Time, out bitset) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	if !t.max[mid].after(at) {
		// No interval in this subtree ends after at.
		return
	}
	t.stabRange(lo, mid, at, out)
	n := t.nodes[mid]
	if !n.start.IsZero() && at.Before(n.start) {
		// Everything right of mid starts even later.
		return
	}
	if n.containsAt(at) {
		out.set(n.rule)
	}
	t.stabRange(mid+1, hi, at, out)
}

// repEntry ties a rule to its recurring windows for the precise check
// behind the wheel's candidate buckets.
type repEntry struct {
	rule int32
	reps []timeutil.Repeated
}

// timeIndex answers "which rules time-match instant t" and assigns every
// instant a cache bucket within which no rule's time outcome can change.
type timeIndex struct {
	always bitset        // rules with no time condition
	tree   *intervalTree // absolute TimeRanges
	wheel  [hoursPerWeek][]int32
	reps   []repEntry // indexed via repPos
	repPos map[int32]int32

	// absBounds are the sorted distinct absolute range endpoints; the
	// cache's absolute time bucket is the binary-search index of the
	// instant among them. Within one bucket every Range.Contains outcome
	// is constant.
	absBounds []time.Time
	// weekBounds are sorted distinct minute-of-week values at which some
	// recurring window can flip, plus all day boundaries. Within one
	// bucket every Repeated.Contains outcome is constant.
	weekBounds []int
}

func newTimeIndex(rs []*rules.Rule) *timeIndex {
	ti := &timeIndex{always: newBitset(len(rs)), repPos: make(map[int32]int32)}
	var ivs []interval
	var absB []time.Time
	weekSet := make(map[int]struct{})
	for i, r := range rs {
		id := int32(i)
		if len(r.TimeRanges) == 0 && len(r.RepeatTimes) == 0 {
			ti.always.set(id)
			continue
		}
		for _, rng := range r.TimeRanges {
			ivs = append(ivs, interval{start: rng.Start, end: rng.End, rule: id})
			if !rng.Start.IsZero() {
				absB = append(absB, rng.Start)
			}
			if !rng.End.IsZero() {
				absB = append(absB, rng.End)
			}
		}
		if len(r.RepeatTimes) == 0 {
			continue
		}
		ti.repPos[id] = int32(len(ti.reps))
		ti.reps = append(ti.reps, repEntry{rule: id, reps: r.RepeatTimes})
		inWheel := make(map[int]bool)
		for _, rep := range r.RepeatTimes {
			for _, h := range wheelHours(rep) {
				if !inWheel[h] {
					inWheel[h] = true
					ti.wheel[h] = append(ti.wheel[h], id)
				}
			}
			from, to := rep.Window()
			for d := 0; d < 7; d++ {
				weekSet[d*timeutil.MinutesPerDay] = struct{}{}
				weekSet[d*timeutil.MinutesPerDay+int(from)] = struct{}{}
				weekSet[d*timeutil.MinutesPerDay+int(to)] = struct{}{}
			}
		}
	}
	ti.tree = newIntervalTree(ivs)

	sort.Slice(absB, func(i, j int) bool { return absB[i].Before(absB[j]) })
	for _, t := range absB {
		if n := len(ti.absBounds); n == 0 || !t.Equal(ti.absBounds[n-1]) {
			ti.absBounds = append(ti.absBounds, t)
		}
	}
	for m := range weekSet {
		ti.weekBounds = append(ti.weekBounds, m)
	}
	sort.Ints(ti.weekBounds)
	return ti
}

// wheelHours returns the hour-of-week buckets a recurring window can be
// active in — a superset: candidates are verified with Repeated.Contains.
func wheelHours(rep timeutil.Repeated) []int {
	if rep.IsZero() {
		return nil
	}
	from, to := rep.Window()
	var out []int
	addMinutes := func(day, fromMin, toMin int) {
		if fromMin >= toMin {
			return
		}
		for h := fromMin / 60; h <= (toMin-1)/60 && h < 24; h++ {
			out = append(out, day*24+h)
		}
	}
	for _, wd := range rep.Days() {
		d := int(wd)
		switch {
		case from == to: // whole day
			addMinutes(d, 0, timeutil.MinutesPerDay)
		case from < to: // same-day window
			addMinutes(d, int(from), int(to))
		default: // wraps midnight: evening of d, morning of d+1
			addMinutes(d, int(from), timeutil.MinutesPerDay)
			addMinutes((d+1)%7, 0, int(to))
		}
	}
	return out
}

// minuteOfWeek positions an instant on the weekly wheel (the instant's own
// wall clock, matching timeutil.ClockTimeOf and Weekday).
func minuteOfWeek(t time.Time) int {
	return int(t.Weekday())*timeutil.MinutesPerDay + int(timeutil.ClockTimeOf(t))
}

// bits marks the rules whose time condition holds at the instant.
func (ti *timeIndex) bits(at time.Time, out bitset) {
	out.copyFrom(ti.always)
	ti.tree.stab(at, out)
	bucket := minuteOfWeek(at) / 60
	for _, id := range ti.wheel[bucket] {
		if out.has(id) {
			continue
		}
		for _, rep := range ti.reps[ti.repPos[id]].reps {
			if rep.Contains(at) {
				out.set(id)
				break
			}
		}
	}
}

// buckets returns the cache's (absolute, weekly) time-bucket pair for an
// instant. Two instants in the same pair produce identical time-match
// outcomes for every rule: all Range endpoints and all minutes at which a
// recurring window can flip are bucket boundaries.
func (ti *timeIndex) buckets(at time.Time) (absIdx, weekIdx int) {
	absIdx = sort.Search(len(ti.absBounds), func(i int) bool { return at.Before(ti.absBounds[i]) })
	m := minuteOfWeek(at)
	weekIdx = sort.SearchInts(ti.weekBounds, m+1)
	return absIdx, weekIdx
}
