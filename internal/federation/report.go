package federation

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/url"
	"time"

	"sensorsafe/internal/resilience"
)

// Outcome classifies how one store fared in a cohort query. Failures are
// first-class: a consumer must be able to tell "no data" (ok, zero
// releases) from "store down" (unreachable) or "key rejected" (denied),
// so a partial result is never mistaken for a complete one.
type Outcome string

const (
	// OutcomeOK: the store answered; zero releases means the rules (or the
	// query) released nothing, not that anything failed.
	OutcomeOK Outcome = "ok"
	// OutcomeTimeout: the per-store deadline expired before an answer.
	OutcomeTimeout Outcome = "timeout"
	// OutcomeDenied: the store (or the broker's Connect) rejected the
	// consumer — bad or revoked key, missing account, forbidden role.
	OutcomeDenied Outcome = "denied"
	// OutcomeUnreachable: transport failure or persistent 5xx; the store
	// may hold data this result is missing.
	OutcomeUnreachable Outcome = "unreachable"
	// OutcomeShed: the store is alive but shedding load (429 with a
	// Retry-After), or this member's circuit breaker is open and the fetch
	// was skipped entirely. Distinct from unreachable: the data exists and
	// a later, politer retry will get it — "store down" and "store
	// protecting itself" must never be confused.
	OutcomeShed Outcome = "shed"
	// OutcomeError: anything else (malformed response, bad query).
	OutcomeError Outcome = "error"
)

// StoreReport is one store's per-query outcome, returned alongside the
// merged releases.
type StoreReport struct {
	// Contributor owns the store.
	Contributor string `json:"contributor"`
	// StoreAddr is the store queried ("" when directory resolution failed).
	StoreAddr string `json:"storeAddr,omitempty"`
	// Outcome classifies the result.
	Outcome Outcome `json:"outcome"`
	// Error is the failure detail for non-ok outcomes.
	Error string `json:"error,omitempty"`
	// Releases is how many released spans this store contributed to the
	// current page.
	Releases int `json:"releases"`
	// Remaining counts releases past the page limit still waiting behind
	// the cursor.
	Remaining int `json:"remaining,omitempty"`
	// Latency is the store's wall-clock fetch time (Connect excluded).
	Latency time.Duration `json:"latency,omitempty"`
	// Hedged reports that a second, hedged request was fired because the
	// first ran long; HedgeWon that the hedge answered first.
	Hedged   bool `json:"hedged,omitempty"`
	HedgeWon bool `json:"hedgeWon,omitempty"`
	// Missing flags that this store's data is absent from the merged
	// releases (any non-ok outcome).
	Missing bool `json:"missing,omitempty"`
}

// classify maps a fetch or connect error to an Outcome.
func classify(err error) Outcome {
	if err == nil {
		return OutcomeOK
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return OutcomeTimeout
	}
	if errors.Is(err, resilience.ErrCircuitOpen) {
		return OutcomeShed
	}
	var se *resilience.StatusError
	if errors.As(err, &se) {
		switch se.Code {
		case http.StatusUnauthorized, http.StatusForbidden:
			return OutcomeDenied
		case http.StatusNotFound:
			// The store does not know this consumer or contributor — the
			// credential path is broken, not the network.
			return OutcomeDenied
		case http.StatusTooManyRequests:
			return OutcomeShed
		}
		if se.Code >= 500 {
			return OutcomeUnreachable
		}
		return OutcomeError
	}
	var ne net.Error
	var ue *url.Error
	if errors.As(err, &ne) || errors.As(err, &ue) {
		return OutcomeUnreachable
	}
	if errors.Is(err, context.Canceled) {
		return OutcomeTimeout
	}
	return OutcomeError
}
