package experiments

import (
	"fmt"
	"time"

	"sensorsafe/internal/abstraction"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

// RunE1 reproduces Table 1 of the paper: every privacy-rule condition
// option (consumer/group/study name, location label/region, time range/
// repeated time, sensor channel, context), every action (allow, deny,
// abstraction), and every abstraction ladder option of Table 1(b) is
// exercised end-to-end through the rule engine and the enforcement
// transform. Each row reports PASS only if the released data shows exactly
// the expected effect.
func RunE1() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Caption: "Table 1 feature matrix: conditions, actions, and abstraction options",
		Headers: []string{"group", "option", "verdict"},
	}
	for _, c := range e1Cases() {
		verdict := "PASS"
		if err := c.check(); err != nil {
			verdict = "FAIL: " + err.Error()
		}
		t.AddRow(c.group, c.option, verdict)
	}
	return t, nil
}

type e1Case struct {
	group  string
	option string
	check  func() error
}

var (
	e1At     = time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC) // Wednesday
	e1Campus = geo.Point{Lat: 34.0689, Lon: -118.4452}
	e1Geo    = geo.GridGeocoder{}
)

// e1Segment is one minute of all-channel data annotated with every context
// category.
func e1Segment() *wavesegment.Segment {
	seg := &wavesegment.Segment{
		Contributor: "alice", Start: e1At, Interval: 100 * time.Millisecond,
		Location: e1Campus,
		Channels: []string{
			wavesegment.ChannelECG, wavesegment.ChannelRespiration,
			wavesegment.ChannelAccelX, wavesegment.ChannelAccelY, wavesegment.ChannelAccelZ,
			wavesegment.ChannelMicrophone, wavesegment.ChannelSkinTemp,
		},
	}
	for i := 0; i < 600; i++ {
		seg.Values = append(seg.Values, []float64{1, 2, 0.1, 0.1, 1, 0.2, 36.5})
	}
	end := seg.EndTime()
	_ = seg.Annotate(rules.CtxWalk, e1At, end)
	_ = seg.Annotate(rules.CtxStressed, e1At, end)
	_ = seg.Annotate(rules.CtxSmoking, e1At, end)
	_ = seg.Annotate(rules.CtxConversation, e1At, end)
	return seg
}

// e1Gazetteer defines the "UCLA" label around the probe point.
func e1Gazetteer() *geo.Gazetteer {
	g := geo.NewGazetteer()
	rect, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	_ = g.Define("UCLA", geo.Region{Rect: rect})
	return g
}

// e1Enforce parses a rule set and enforces it over the standard segment
// for the given consumer/groups.
func e1Enforce(ruleJSON, consumer string, groups []string) ([]*abstraction.Release, error) {
	rs, err := rules.UnmarshalRuleSet([]byte(ruleJSON))
	if err != nil {
		return nil, err
	}
	e, err := rules.NewEngine(rs, e1Gazetteer())
	if err != nil {
		return nil, err
	}
	return abstraction.Enforce(e, consumer, groups, e1Segment(), e1Geo)
}

// expectShared asserts the rule set releases (or withholds) data for the
// consumer.
func expectShared(ruleJSON, consumer string, groups []string, want bool) error {
	rels, err := e1Enforce(ruleJSON, consumer, groups)
	if err != nil {
		return err
	}
	if got := len(rels) > 0; got != want {
		return fmt.Errorf("shared=%v, want %v", got, want)
	}
	return nil
}

func e1Cases() []e1Case {
	cases := []e1Case{
		// --- Conditions: data consumer (user / group / study name). ---
		{"Condition: Consumer", "User Name", func() error {
			rule := `[{"Consumer":["Bob"],"Action":"Allow"}]`
			if err := expectShared(rule, "Bob", nil, true); err != nil {
				return err
			}
			return expectShared(rule, "Eve", nil, false)
		}},
		{"Condition: Consumer", "Group Name", func() error {
			rule := `[{"Group":["TeamA"],"Action":"Allow"}]`
			if err := expectShared(rule, "Bob", []string{"TeamA"}, true); err != nil {
				return err
			}
			return expectShared(rule, "Bob", []string{"TeamB"}, false)
		}},
		{"Condition: Consumer", "Study Name", func() error {
			rule := `[{"Study":["StressStudy"],"Action":"Allow"}]`
			if err := expectShared(rule, "Bob", []string{"StressStudy"}, true); err != nil {
				return err
			}
			return expectShared(rule, "Bob", nil, false)
		}},

		// --- Conditions: location (label / region coordinates). ---
		{"Condition: Location", "Pre-defined Label", func() error {
			rule := `[{"LocationLabel":["UCLA"],"Action":"Allow"}]`
			return expectShared(rule, "Bob", nil, true) // segment is at UCLA
		}},
		{"Condition: Location", "Region Coordinates", func() error {
			inside := `[{"Region":{"rect":{"minLat":34,"minLon":-119,"maxLat":35,"maxLon":-118}},"Action":"Allow"}]`
			if err := expectShared(inside, "Bob", nil, true); err != nil {
				return err
			}
			outside := `[{"Region":{"rect":{"minLat":48,"minLon":2,"maxLat":49,"maxLon":3}},"Action":"Allow"}]`
			return expectShared(outside, "Bob", nil, false)
		}},

		// --- Conditions: time (range / repeated). ---
		{"Condition: Time", "Time Range", func() error {
			during := `[{"TimeRange":{"Start":"2011-02-01T00:00:00Z","End":"2011-03-01T00:00:00Z"},"Action":"Allow"}]`
			if err := expectShared(during, "Bob", nil, true); err != nil {
				return err
			}
			before := `[{"TimeRange":{"End":"2011-01-01T00:00:00Z"},"Action":"Allow"}]`
			return expectShared(before, "Bob", nil, false)
		}},
		{"Condition: Time", "Repeated Time", func() error {
			weekday := `[{"RepeatTime":{"Day":["Mon","Tue","Wed","Thu","Fri"],"HourMin":["9:00am","6:00pm"]},"Action":"Allow"}]`
			if err := expectShared(weekday, "Bob", nil, true); err != nil { // Wed 10am
				return err
			}
			weekend := `[{"RepeatTime":{"Day":["Sat","Sun"]},"Action":"Allow"}]`
			return expectShared(weekend, "Bob", nil, false)
		}},

		// --- Condition: sensor channel. ---
		{"Condition: Sensor", "Sensor Channel Name", func() error {
			rule := `[{"Sensor":["ECG"],"Action":"Allow"}]`
			rels, err := e1Enforce(rule, "Bob", nil)
			if err != nil {
				return err
			}
			if len(rels) != 1 || rels[0].Segment == nil {
				return fmt.Errorf("expected one release with data")
			}
			if got := rels[0].Segment.Channels; len(got) != 1 || got[0] != "ECG" {
				return fmt.Errorf("channels = %v, want [ECG]", got)
			}
			return nil
		}},

		// --- Actions. ---
		{"Action", "Allow", func() error {
			return expectShared(`[{"Action":"Allow"}]`, "Bob", nil, true)
		}},
		{"Action", "Deny", func() error {
			return expectShared(`[{"Action":"Allow"},{"Action":"Deny"}]`, "Bob", nil, false)
		}},
		{"Action", "Abstraction", func() error {
			rule := `[{"Action":"Allow"},{"Action":{"Abstraction":{"Stress":"NotShared"}}}]`
			rels, err := e1Enforce(rule, "Bob", nil)
			if err != nil {
				return err
			}
			for _, rel := range rels {
				for _, c := range rel.Contexts {
					if c.Context == rules.CtxStressed {
						return fmt.Errorf("stress leaked")
					}
				}
			}
			return nil
		}},
	}

	// --- Context conditions, one per available context label. ---
	for _, ctx := range []string{
		rules.CtxMoving, rules.CtxNotMoving, rules.CtxStill, rules.CtxWalk, rules.CtxRun,
		rules.CtxBike, rules.CtxDrive, rules.CtxStressed, rules.CtxConversation, rules.CtxSmoking,
	} {
		ctx := ctx
		cases = append(cases, e1Case{"Condition: Context", ctx, func() error {
			rule := fmt.Sprintf(`[{"Context":[%q],"Action":"Allow"}]`, ctx)
			rs, err := rules.UnmarshalRuleSet([]byte(rule))
			if err != nil {
				return err
			}
			e, err := rules.NewEngine(rs, nil)
			if err != nil {
				return err
			}
			with := e.Decide(&rules.Request{Consumer: "Bob", At: e1At, Location: e1Campus, ActiveContexts: []string{ctx}})
			without := e.Decide(&rules.Request{Consumer: "Bob", At: e1At, Location: e1Campus})
			if !with.SharesAnything() {
				return fmt.Errorf("context %s active but nothing shared", ctx)
			}
			if without.SharesAnything() {
				return fmt.Errorf("context %s inactive but data shared", ctx)
			}
			return nil
		}})
	}

	// --- Table 1(b): location abstraction ladder. ---
	for _, opt := range []string{"Coordinates", "StreetAddress", "Zipcode", "City", "State", "Country", "NotShared"} {
		opt := opt
		cases = append(cases, e1Case{"Abstraction: Location", opt, func() error {
			rule := fmt.Sprintf(`[{"Action":"Allow"},{"Action":{"Abstraction":{"Location":%q}}}]`, opt)
			rels, err := e1Enforce(rule, "Bob", nil)
			if err != nil {
				return err
			}
			if len(rels) == 0 {
				return fmt.Errorf("nothing released")
			}
			want, err := geo.ParseLocationGranularity(opt)
			if err != nil {
				return err
			}
			loc := rels[0].Location
			if loc.Granularity != want {
				return fmt.Errorf("granularity %v, want %v", loc.Granularity, want)
			}
			switch {
			case want == geo.LocCoordinates && loc.Point == nil:
				return fmt.Errorf("coordinates missing")
			case want == geo.LocNotShared && (loc.Point != nil || loc.Text != ""):
				return fmt.Errorf("location leaked")
			case want > geo.LocCoordinates && want < geo.LocNotShared && loc.Text == "":
				return fmt.Errorf("abstracted text missing")
			}
			return nil
		}})
	}

	// --- Table 1(b): time abstraction ladder. ---
	for _, opt := range []string{"Milliseconds", "Hour", "Day", "Month", "Year", "NotShared"} {
		opt := opt
		cases = append(cases, e1Case{"Abstraction: Time", opt, func() error {
			rule := fmt.Sprintf(`[{"Action":"Allow"},{"Action":{"Abstraction":{"Time":%q}}}]`, opt)
			rels, err := e1Enforce(rule, "Bob", nil)
			if err != nil {
				return err
			}
			if len(rels) == 0 {
				return fmt.Errorf("nothing released")
			}
			want, err := timeutil.ParseGranularity(opt)
			if err != nil {
				return err
			}
			rel := rels[0]
			if rel.TimeGranularity != want {
				return fmt.Errorf("granularity %v, want %v", rel.TimeGranularity, want)
			}
			if want == timeutil.GranNotShared {
				if !rel.Start.IsZero() {
					return fmt.Errorf("time leaked")
				}
				return nil
			}
			if !rel.Start.Equal(want.Abstract(e1At)) {
				return fmt.Errorf("start %v not truncated to %v", rel.Start, want)
			}
			return nil
		}})
	}

	// --- Table 1(b): context ladders (activity, stress, smoking,
	// conversation), using the paper's descriptive option names. ---
	type ladder struct {
		cat     rules.Category
		options []string
		label   string // annotation that must transform
	}
	ladders := []ladder{
		{rules.CategoryActivity, []string{"Accelerometer Data", "Still/Walk/Run/Bike/Drive", "Move/Not Move", "Not Share"}, rules.CtxWalk},
		{rules.CategoryStress, []string{"ECG/Respiration Data", "Stressed/Not Stressed", "Not Share"}, rules.CtxStressed},
		{rules.CategorySmoking, []string{"Respiration Data", "Smoking/Not Smoking", "Not Share"}, rules.CtxSmoking},
		{rules.CategoryConversation, []string{"Microphone/Respiration Data", "Conversation/Not Conversation", "Not Share"}, rules.CtxConversation},
	}
	for _, l := range ladders {
		for _, opt := range l.options {
			l, opt := l, opt
			cases = append(cases, e1Case{fmt.Sprintf("Abstraction: %s", l.cat), opt, func() error {
				rule := fmt.Sprintf(`[{"Action":"Allow"},{"Action":{"Abstraction":{%q:%q}}}]`, string(l.cat), opt)
				rels, err := e1Enforce(rule, "Bob", nil)
				if err != nil {
					return err
				}
				if len(rels) == 0 {
					return fmt.Errorf("nothing released")
				}
				want, err := rules.ParseLevel(l.cat, opt)
				if err != nil {
					return err
				}
				rel := rels[0]
				wantLabel, labelShared := rules.AbstractLabel(l.label, want)
				var got string
				for _, c := range rel.Contexts {
					if cat, _ := rules.LabelCategory(c.Context); cat == l.cat {
						got = c.Context
					}
				}
				if labelShared && got != wantLabel {
					return fmt.Errorf("label %q, want %q", got, wantLabel)
				}
				if !labelShared && got != "" {
					return fmt.Errorf("label %q leaked at NotShared", got)
				}
				// Raw channels of the category must flow only at LevelRaw
				// — and then only if no *other* category inferable from
				// the same channel is below raw (the dependency closure).
				for _, ch := range rules.CategorySensors(l.cat) {
					if rel.Segment == nil {
						continue
					}
					has := rel.Segment.HasChannel(ch)
					if want != rules.LevelRaw && has {
						riskOnly := true
						for _, other := range rules.SensorCategories(ch) {
							if other != l.cat {
								riskOnly = false
							}
						}
						if riskOnly {
							return fmt.Errorf("raw %s leaked below raw level", ch)
						}
						return fmt.Errorf("raw %s leaked (fed by abstracted %s)", ch, l.cat)
					}
				}
				return nil
			}})
		}
	}
	return cases
}
