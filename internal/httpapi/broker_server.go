package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
	"sensorsafe/internal/overload"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/broker"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/resilience"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
)

// Broker wire types.

type brokerRegisterContribReq struct {
	Name      string `json:"name"`
	StoreAddr string `json:"storeAddr"`
}

type brokerSyncReq struct {
	Contributor string          `json:"contributor"`
	Version     uint64          `json:"version"`
	Rules       json.RawMessage `json:"rules"`
	Places      []geo.Region    `json:"places"`
}

type syncDigestReq struct {
	StoreAddr string            `json:"storeAddr"`
	Versions  map[string]uint64 `json:"versions"`
}

type syncDigestResp struct {
	Stale []string `json:"stale"`
}

type replicasResp struct {
	Replicas []broker.ReplicaStatus `json:"replicas"`
}

type keyReq struct {
	Key auth.APIKey `json:"key"`
}

type directoryResp struct {
	Contributors []broker.ContributorInfo `json:"contributors"`
}

type connectReq struct {
	Key         auth.APIKey `json:"key"`
	Contributor string      `json:"contributor"`
}

type credentialsResp struct {
	Credentials []broker.Credential `json:"credentials"`
}

type listSaveReq struct {
	Key     auth.APIKey `json:"key"`
	Name    string      `json:"name"`
	Members []string    `json:"members"`
}

type listGetReq struct {
	Key  auth.APIKey `json:"key"`
	Name string      `json:"name"`
}

type listGetResp struct {
	Members []string `json:"members"`
}

type studyReq struct {
	Key         auth.APIKey `json:"key"`
	Study       string      `json:"study"`
	Contributor string      `json:"contributor,omitempty"`
}

type studyMembersResp struct {
	Members []string `json:"members"`
}

type studyContributorsResp struct {
	Contributors []string `json:"contributors"`
}

// searchWire is the JSON form of broker.SearchQuery (Repeated and Range
// need explicit wire shapes).
type searchWire struct {
	Key            auth.APIKey       `json:"key"`
	Sensors        []string          `json:"sensors,omitempty"`
	Contexts       map[string]string `json:"contexts,omitempty"` // category → level name
	LocationLabel  string            `json:"locationLabel,omitempty"`
	Region         *geo.Rect         `json:"region,omitempty"`
	RepeatDay      []string          `json:"repeatDay,omitempty"`
	RepeatHourMin  []string          `json:"repeatHourMin,omitempty"`
	TimeStart      string            `json:"timeStart,omitempty"`
	TimeEnd        string            `json:"timeEnd,omitempty"`
	ActiveContexts []string          `json:"activeContexts,omitempty"`
	Reference      string            `json:"reference,omitempty"`
}

type searchResp struct {
	Contributors []string `json:"contributors"`
	// Hits mirrors Contributors with store addresses attached, so a
	// federated consumer resolves the whole cohort in one call.
	Hits []broker.SearchHit `json:"hits,omitempty"`
}

func (w *searchWire) toQuery() (*broker.SearchQuery, error) {
	q := &broker.SearchQuery{
		Sensors:        w.Sensors,
		LocationLabel:  w.LocationLabel,
		ActiveContexts: w.ActiveContexts,
	}
	if w.Region != nil {
		q.Region = *w.Region
	}
	if len(w.Contexts) > 0 {
		q.Contexts = make(map[rules.Category]rules.Level, len(w.Contexts))
		for catName, lvlName := range w.Contexts {
			var cat rules.Category
			for _, c := range rules.Categories() {
				if string(c) == catName {
					cat = c
				}
			}
			if cat == "" {
				return nil, fmt.Errorf("httpapi: unknown context category %q", catName)
			}
			lvl, err := rules.ParseLevel(cat, lvlName)
			if err != nil {
				return nil, err
			}
			q.Contexts[cat] = lvl
		}
	}
	if len(w.RepeatDay) > 0 || len(w.RepeatHourMin) > 0 {
		rep, err := timeutil.ParseRepeated(w.RepeatDay, w.RepeatHourMin)
		if err != nil {
			return nil, err
		}
		q.RepeatTime = rep
	}
	var start, end time.Time
	var err error
	if w.TimeStart != "" {
		if start, err = time.Parse(time.RFC3339, w.TimeStart); err != nil {
			return nil, fmt.Errorf("httpapi: bad timeStart: %w", err)
		}
	}
	if w.TimeEnd != "" {
		if end, err = time.Parse(time.RFC3339, w.TimeEnd); err != nil {
			return nil, fmt.Errorf("httpapi: bad timeEnd: %w", err)
		}
	}
	if !start.IsZero() || !end.IsZero() {
		rng, err := timeutil.NewRange(start, end)
		if err != nil {
			return nil, err
		}
		q.TimeRange = rng
	}
	if w.Reference != "" {
		if q.Reference, err = time.Parse(time.RFC3339, w.Reference); err != nil {
			return nil, fmt.Errorf("httpapi: bad reference: %w", err)
		}
	}
	return q, nil
}

// NewBrokerHandler builds the HTTP API for the broker with a default
// admission controller (see NewBrokerHandlerOverload).
func NewBrokerHandler(svc *broker.Service) http.Handler {
	return NewBrokerHandlerOverload(svc, overload.NewController(overload.BrokerDefaults()))
}

// NewBrokerHandlerOverload builds the broker API around an explicit
// admission controller. Stores whose directory address is an http(s) URL
// are dialed on demand, so consumer provisioning works without explicit
// store registration (and across broker restarts).
func NewBrokerHandlerOverload(svc *broker.Service, ctrl *overload.Controller) http.Handler {
	start := time.Now()
	svc.SetStoreDialer(func(addr string) broker.StoreConn {
		if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
			return &StoreClient{BaseURL: addr}
		}
		return nil
	})
	mux := http.NewServeMux()

	mux.HandleFunc("/api/consumers/register", post(func(ctx context.Context, r *registerReq) (registerResp, error) {
		u, err := svc.RegisterConsumer(r.Name)
		if err != nil {
			return registerResp{}, err
		}
		return registerResp{Name: u.Name, Role: u.Role.String(), Key: u.Key}, nil
	}))

	mux.HandleFunc("/api/contributors/register", post(func(ctx context.Context, r *brokerRegisterContribReq) (okResp, error) {
		if err := svc.RegisterContributor(r.Name, r.StoreAddr); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/sync", post(func(ctx context.Context, r *brokerSyncReq) (okResp, error) {
		if err := svc.SyncRules(r.Contributor, r.Version, r.Rules, r.Places); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/sync/digest", post(func(ctx context.Context, r *syncDigestReq) (syncDigestResp, error) {
		stale, err := svc.SyncDigest(r.StoreAddr, r.Versions)
		if err != nil {
			return syncDigestResp{}, err
		}
		return syncDigestResp{Stale: stale}, nil
	}))

	mux.HandleFunc("/api/replicas", post(func(ctx context.Context, r *struct{}) (replicasResp, error) {
		return replicasResp{Replicas: svc.Replicas()}, nil
	}))

	mux.HandleFunc("/api/directory", post(func(ctx context.Context, r *keyReq) (directoryResp, error) {
		dir, err := svc.Directory(r.Key)
		if err != nil {
			return directoryResp{}, err
		}
		return directoryResp{Contributors: dir}, nil
	}))

	mux.HandleFunc("/api/connect", post(func(ctx context.Context, r *connectReq) (broker.Credential, error) {
		return svc.Connect(ctx, r.Key, r.Contributor)
	}))

	mux.HandleFunc("/api/credentials", post(func(ctx context.Context, r *keyReq) (credentialsResp, error) {
		creds, err := svc.Credentials(r.Key)
		if err != nil {
			return credentialsResp{}, err
		}
		return credentialsResp{Credentials: creds}, nil
	}))

	mux.HandleFunc("/api/search", post(func(ctx context.Context, r *searchWire) (searchResp, error) {
		q, err := r.toQuery()
		if err != nil {
			return searchResp{}, err
		}
		hits, err := svc.SearchInfoCtx(ctx, r.Key, q)
		if err != nil {
			return searchResp{}, err
		}
		resp := searchResp{Contributors: make([]string, len(hits)), Hits: hits}
		for i, h := range hits {
			resp.Contributors[i] = h.Contributor
		}
		return resp, nil
	}))

	mux.HandleFunc("/api/lists/save", post(func(ctx context.Context, r *listSaveReq) (okResp, error) {
		if err := svc.SaveList(r.Key, r.Name, r.Members); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/lists/get", post(func(ctx context.Context, r *listGetReq) (listGetResp, error) {
		members, err := svc.List(r.Key, r.Name)
		if err != nil {
			return listGetResp{}, err
		}
		return listGetResp{Members: members}, nil
	}))

	mux.HandleFunc("/api/studies/create", post(func(ctx context.Context, r *studyReq) (okResp, error) {
		if err := svc.CreateStudy(r.Study); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/studies/join", post(func(ctx context.Context, r *studyReq) (okResp, error) {
		if err := svc.JoinStudy(r.Key, r.Study); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/studies/members", post(func(ctx context.Context, r *studyReq) (studyMembersResp, error) {
		members, err := svc.StudyMembers(r.Study)
		if err != nil {
			return studyMembersResp{}, err
		}
		return studyMembersResp{Members: members}, nil
	}))

	mux.HandleFunc("/api/studies/enroll", post(func(ctx context.Context, r *studyReq) (okResp, error) {
		if err := svc.EnrollContributor(r.Study, r.Contributor); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))

	mux.HandleFunc("/api/studies/contributors", post(func(ctx context.Context, r *studyReq) (studyContributorsResp, error) {
		names, err := svc.StudyContributors(r.Study)
		if err != nil {
			return studyContributorsResp{}, err
		}
		return studyContributorsResp{Contributors: names}, nil
	}))

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, Health{
			Status:       "ok",
			UptimeS:      time.Since(start).Seconds(),
			Contributors: svc.ContributorCount(),
			Consumers:    svc.Users().Len(),
			Degradation:  ctrl.State().String(),
			Pressure:     ctrl.Pressure(),
		})
	})

	mux.Handle("/metrics", obs.Handler())

	// Completed traces (sampled: errored or slow spans, bounded ring). The
	// payload carries span metadata only — names, IDs, rule provenance —
	// never sensor data.
	mux.Handle("/debug/traces", trace.Handler())

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, brokerAdminHTML, svc.ContributorCount(), svc.Users().Len())
	})

	inner := withOverload(ctrl, brokerRouteClass, mux,
		withIdempotency("broker", resilience.NewIdemCache(0), mux))
	return withObs("broker", mux, inner)
}

const brokerAdminHTML = `<!DOCTYPE html>
<html><head><title>SensorSafe Broker</title></head>
<body>
<h1>SensorSafe Broker</h1>
<p>Contributors: %d &middot; Consumers: %d</p>
<h2>API</h2>
<ul>
<li>POST /api/consumers/register {name}</li>
<li>POST /api/contributors/register {name, storeAddr}</li>
<li>POST /api/sync {contributor, version, rules, places}</li>
<li>POST /api/sync/digest {storeAddr, versions}</li>
<li>POST /api/replicas</li>
<li>POST /api/directory {key}</li>
<li>POST /api/connect {key, contributor}</li>
<li>POST /api/credentials {key}</li>
<li>POST /api/search {key, sensors, contexts, locationLabel, repeatDay, repeatHourMin, ...}</li>
<li>POST /api/lists/save | /api/lists/get</li>
<li>POST /api/studies/create | join | members | enroll | contributors</li>
</ul>
</body></html>
`
