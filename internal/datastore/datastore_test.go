package datastore

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sensorsafe/internal/auth"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/wavesegment"
)

var (
	t0   = time.Date(2011, 2, 16, 10, 0, 0, 0, time.UTC) // Wednesday
	ucla = geo.Point{Lat: 34.0689, Lon: -118.4452}
)

func newService(t *testing.T, opts Options) *Service {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func packet(contributor string, start time.Time, n int, channels ...string) *wavesegment.Segment {
	if len(channels) == 0 {
		channels = []string{wavesegment.ChannelECG, wavesegment.ChannelRespiration}
	}
	s := &wavesegment.Segment{
		Contributor: contributor,
		Start:       start,
		Interval:    100 * time.Millisecond,
		Location:    ucla,
		Channels:    channels,
	}
	for i := 0; i < n; i++ {
		row := make([]float64, len(channels))
		for j := range row {
			row[j] = float64(i)
		}
		s.Values = append(s.Values, row)
	}
	return s
}

// stream returns count consecutive 64-sample packets at 10 Hz.
func packetStream(contributor string, start time.Time, count int) []*wavesegment.Segment {
	var out []*wavesegment.Segment
	at := start
	for i := 0; i < count; i++ {
		p := packet(contributor, at, 64)
		out = append(out, p)
		at = p.EndTime()
	}
	return out
}

func setupAliceBob(t *testing.T, s *Service) (alice, bob auth.User) {
	t.Helper()
	var err error
	if alice, err = s.RegisterContributor("alice"); err != nil {
		t.Fatal(err)
	}
	if bob, err = s.RegisterConsumer("Bob"); err != nil {
		t.Fatal(err)
	}
	return alice, bob
}

func TestRegisterAndRoles(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	if alice.Role != auth.RoleContributor || bob.Role != auth.RoleConsumer {
		t.Fatal("roles wrong")
	}
	// Role enforcement.
	if _, err := s.Upload(bob.Key, packetStream("Bob", t0, 1)); !errors.Is(err, ErrNotContributor) {
		t.Errorf("consumer upload: %v", err)
	}
	if _, err := s.Query(alice.Key, &query.Query{}); !errors.Is(err, ErrNotConsumer) {
		t.Errorf("contributor query: %v", err)
	}
	if _, err := s.Upload("bogus", nil); !errors.Is(err, auth.ErrBadKey) {
		t.Errorf("bad key: %v", err)
	}
}

func TestUploadOptimizesPackets(t *testing.T) {
	s := newService(t, Options{MaxSegmentSamples: 1 << 20})
	alice, _ := setupAliceBob(t, s)
	// 100 consecutive 64-sample packets merge into one record.
	n, err := s.Upload(alice.Key, packetStream("alice", t0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("records written = %d, want 1", n)
	}
	if s.SegmentCount() != 1 {
		t.Errorf("SegmentCount = %d, want 1", s.SegmentCount())
	}
}

func TestUploadTailCoalescing(t *testing.T) {
	s := newService(t, Options{MaxSegmentSamples: 1 << 20})
	alice, _ := setupAliceBob(t, s)
	packets := packetStream("alice", t0, 10)
	// Upload in two consecutive batches: the second must extend the first's
	// record instead of creating another.
	if _, err := s.Upload(alice.Key, packets[:5]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Upload(alice.Key, packets[5:]); err != nil {
		t.Fatal(err)
	}
	if s.SegmentCount() != 1 {
		t.Errorf("SegmentCount = %d, want 1 after tail coalescing", s.SegmentCount())
	}
	segs, err := s.QueryOwn(alice.Key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].NumSamples() != 640 {
		t.Errorf("stored = %d segments, %d samples", len(segs), segs[0].NumSamples())
	}
}

func TestUploadRespectsSegmentCap(t *testing.T) {
	s := newService(t, Options{MaxSegmentSamples: 200})
	alice, _ := setupAliceBob(t, s)
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 10)); err != nil {
		t.Fatal(err)
	}
	segs, _ := s.QueryOwn(alice.Key, &query.Query{})
	for _, seg := range segs {
		if seg.NumSamples() > 200 {
			t.Errorf("segment exceeds cap: %d samples", seg.NumSamples())
		}
	}
	if len(segs) >= 10 {
		t.Errorf("no compaction: %d records", len(segs))
	}
}

func TestUploadOwnershipChecks(t *testing.T) {
	s := newService(t, Options{})
	alice, _ := setupAliceBob(t, s)
	// Foreign contributor name rejected.
	if _, err := s.Upload(alice.Key, packetStream("mallory", t0, 1)); !errors.Is(err, ErrWrongOwner) {
		t.Errorf("foreign upload: %v", err)
	}
	// Blank contributor is stamped with the owner.
	p := packet("", t0, 10)
	if _, err := s.Upload(alice.Key, []*wavesegment.Segment{p}); err != nil {
		t.Fatal(err)
	}
	segs, _ := s.QueryOwn(alice.Key, &query.Query{})
	if len(segs) != 1 || segs[0].Contributor != "alice" {
		t.Errorf("stamped contributor = %v", segs)
	}
	// Invalid segments rejected.
	if _, err := s.Upload(alice.Key, []*wavesegment.Segment{{}}); err == nil {
		t.Error("invalid segment should be rejected")
	}
	if _, err := s.Upload(alice.Key, []*wavesegment.Segment{nil}); err == nil {
		t.Error("nil segment should be rejected")
	}
}

func TestQueryDefaultDeny(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 5)); err != nil {
		t.Fatal(err)
	}
	rels, err := s.Query(bob.Key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 0 {
		t.Errorf("no rules set: releases = %d, want 0", len(rels))
	}
}

func TestSetRulesAndQuery(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRules(alice.Key, []byte(`[{"Consumer":["Bob"],"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	rels, err := s.Query(bob.Key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 || rels[0].Segment == nil {
		t.Fatalf("releases = %v", rels)
	}
	if rels[0].Segment.NumSamples() != 320 {
		t.Errorf("released samples = %d", rels[0].Segment.NumSamples())
	}
	// Round trip of rules JSON.
	data, err := s.Rules(alice.Key)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rules.UnmarshalRuleSet(data)
	if err != nil || len(rs) != 1 {
		t.Errorf("rules = %v, %v", rs, err)
	}
	// Eve the unknown consumer cannot query; unknown keys fail.
	if _, err := s.Query("bogus", &query.Query{}); err == nil {
		t.Error("bad key should fail")
	}
	// A second consumer is not covered by Alice's Bob-only rule.
	eve, _ := s.RegisterConsumer("Eve")
	rels, err = s.Query(eve.Key, &query.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 0 {
		t.Error("Eve must get nothing")
	}
}

func TestSetRulesRejectsBadJSON(t *testing.T) {
	s := newService(t, Options{})
	alice, _ := setupAliceBob(t, s)
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Explode"}]`)); err == nil {
		t.Error("bad rules should be rejected")
	}
	if err := s.SetRules(alice.Key, []byte(`{`)); err == nil {
		t.Error("bad JSON should be rejected")
	}
}

func TestDefinePlaceAffectsRules(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRules(alice.Key, []byte(`[{"Consumer":["Bob"],"LocationLabel":["UCLA"],"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	// Label not defined yet: rule cannot match.
	rels, _ := s.Query(bob.Key, &query.Query{})
	if len(rels) != 0 {
		t.Error("undefined label should match nothing")
	}
	rect, _ := geo.NewRect(geo.Point{Lat: 34.05, Lon: -118.46}, geo.Point{Lat: 34.08, Lon: -118.43})
	if err := s.DefinePlace(alice.Key, "UCLA", geo.Region{Rect: rect}); err != nil {
		t.Fatal(err)
	}
	rels, _ = s.Query(bob.Key, &query.Query{})
	if len(rels) != 1 {
		t.Errorf("after defining UCLA: releases = %d, want 1", len(rels))
	}
	places, err := s.Places(alice.Key)
	if err != nil || len(places) != 1 || places[0].Label != "UCLA" {
		t.Errorf("places = %v, %v", places, err)
	}
	if err := s.DefinePlace(alice.Key, "", geo.Region{Rect: rect}); err == nil {
		t.Error("empty label should be rejected")
	}
}

func TestQueryChannelProjectionAndContextFilter(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	p := packet("alice", t0, 600, wavesegment.ChannelECG, wavesegment.ChannelAccelX)
	_ = p.Annotate(rules.CtxDrive, t0, t0.Add(30*time.Second))
	if _, err := s.Upload(alice.Key, []*wavesegment.Segment{p}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}

	// Channel projection. The Drive annotation edge at +30 s splits
	// enforcement into two spans, so two releases come back, each ECG-only.
	rels, err := s.Query(bob.Key, &query.Query{Channels: []string{"ECG"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("projected releases = %d, want 2", len(rels))
	}
	for _, rel := range rels {
		if len(rel.Segment.Channels) != 1 || rel.Segment.Channels[0] != "ECG" {
			t.Fatalf("projected channels = %v", rel.Segment.Channels)
		}
	}

	// Context filter: Drive spans only.
	rels, err = s.Query(bob.Key, &query.Query{Contexts: []string{"Drive"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 {
		t.Fatalf("context filter releases = %d", len(rels))
	}
	if len(rels[0].Contexts) == 0 || rels[0].Contexts[0].Context != rules.CtxDrive {
		t.Errorf("contexts = %v", rels[0].Contexts)
	}

	// Context filter for a context that never occurs.
	rels, err = s.Query(bob.Key, &query.Query{Contexts: []string{"Smoking"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 0 {
		t.Error("no smoking spans exist")
	}
}

func TestContextFilterCannotLeakHiddenContexts(t *testing.T) {
	// Alice hides stress; Bob filters by Stressed. Even though raw
	// annotations contain stress spans, the filter runs on released
	// contexts, so nothing comes back.
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	p := packet("alice", t0, 600)
	_ = p.Annotate(rules.CtxStressed, t0, t0.Add(60*time.Second))
	if _, err := s.Upload(alice.Key, []*wavesegment.Segment{p}); err != nil {
		t.Fatal(err)
	}
	ruleJSON := `[
	  {"Action": {"Abstraction": {"Stress": "NotShared"}}}
	]`
	if err := s.SetRules(alice.Key, []byte(ruleJSON)); err != nil {
		t.Fatal(err)
	}
	rels, err := s.Query(bob.Key, &query.Query{Contexts: []string{"Stressed"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 0 {
		t.Fatalf("hidden context leaked through filter: %+v", rels)
	}
}

func TestGroupScopedRules(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRules(alice.Key, []byte(`[{"Group":["StressStudy"],"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	// Bob not in the study yet.
	rels, _ := s.Query(bob.Key, &query.Query{})
	if len(rels) != 0 {
		t.Error("non-member should get nothing")
	}
	if err := s.AssignConsumerGroups(alice.Key, "Bob", []string{"StressStudy"}); err != nil {
		t.Fatal(err)
	}
	rels, _ = s.Query(bob.Key, &query.Query{})
	if len(rels) != 1 {
		t.Errorf("member releases = %d, want 1", len(rels))
	}
}

func TestQueryOwnScopedToOwner(t *testing.T) {
	s := newService(t, Options{})
	alice, _ := setupAliceBob(t, s)
	carol, err := s.RegisterContributor("carol")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Upload(carol.Key, packetStream("carol", t0, 1)); err != nil {
		t.Fatal(err)
	}
	segs, err := s.QueryOwn(alice.Key, &query.Query{Contributor: "carol"})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if seg.Contributor != "alice" {
			t.Error("QueryOwn must not expose other contributors' data")
		}
	}
	if len(segs) != 1 {
		t.Errorf("alice sees %d segments", len(segs))
	}
}

type recordingSync struct {
	mu      sync.Mutex
	calls   []string
	digests int
}

func (r *recordingSync) SyncRules(contributor string, version uint64, ruleSet []byte, places []geo.Region) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, contributor)
	return nil
}

func (r *recordingSync) SyncDigest(storeAddr string, versions map[string]uint64) ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.digests++
	return nil, nil
}

func TestRuleSyncPushes(t *testing.T) {
	sync := &recordingSync{}
	s := newService(t, Options{Sync: sync})
	alice, _ := setupAliceBob(t, s)
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	rect, _ := geo.NewRect(geo.Point{Lat: 34, Lon: -119}, geo.Point{Lat: 35, Lon: -118})
	if err := s.DefinePlace(alice.Key, "UCLA", geo.Region{Rect: rect}); err != nil {
		t.Fatal(err)
	}
	if len(sync.calls) != 2 {
		t.Errorf("sync calls = %v, want 2", sync.calls)
	}
	if err := s.ResyncAll(); err != nil {
		t.Fatal(err)
	}
	if len(sync.calls) != 3 {
		t.Errorf("after ResyncAll calls = %v", sync.calls)
	}
}

func TestPersistentServiceSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := s.RegisterContributor("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Upload(alice.Key, packetStream("alice", t0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.SegmentCount() != 1 {
		t.Errorf("segments after reopen = %d, want 1", s2.SegmentCount())
	}
}

func TestRulesForEngine(t *testing.T) {
	s := newService(t, Options{})
	alice, _ := setupAliceBob(t, s)
	e, err := s.RulesFor(alice.Key)
	if err != nil {
		t.Fatal(err)
	}
	if e != nil {
		t.Error("no rules yet: engine should be nil")
	}
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	e, err = s.RulesFor(alice.Key)
	if err != nil || e == nil {
		t.Fatalf("engine = %v, %v", e, err)
	}
	d := e.Decide(&rules.Request{Consumer: "anyone", At: t0, Location: ucla})
	if !d.SharesAnything() {
		t.Error("allow-all engine should share")
	}
}

func TestAccessorsAndProvisioning(t *testing.T) {
	s := newService(t, Options{Name: "store-x"})
	if s.Name() != "store-x" || s.Addr() != "store-x" {
		t.Errorf("Name/Addr = %q/%q", s.Name(), s.Addr())
	}
	if s.Users() == nil || s.Web() == nil || s.Storage() == nil {
		t.Error("accessors must not be nil")
	}
	key, err := s.ProvisionConsumer(context.Background(), "bob")
	if err != nil || key == "" {
		t.Fatalf("ProvisionConsumer = %q, %v", key, err)
	}
	if _, err := s.Query(key, &query.Query{}); err != nil {
		t.Errorf("provisioned key should query: %v", err)
	}
	if _, err := s.ProvisionConsumer(context.Background(), "bob"); err == nil {
		t.Error("duplicate provisioning should fail")
	}
}

func TestRotateKeyLocal(t *testing.T) {
	s := newService(t, Options{})
	alice, _ := setupAliceBob(t, s)
	fresh, err := s.RotateKey(alice.Key)
	if err != nil || fresh == alice.Key {
		t.Fatalf("rotate = %q, %v", fresh, err)
	}
	if _, err := s.QueryOwn(alice.Key, &query.Query{}); err == nil {
		t.Error("old key should be dead")
	}
	if _, err := s.QueryOwn(fresh, &query.Query{}); err != nil {
		t.Errorf("fresh key: %v", err)
	}
	if _, err := s.RotateKey("bogus"); err == nil {
		t.Error("unknown key rotation should fail")
	}
}

func TestConcurrentUploadsAndQueries(t *testing.T) {
	s := newService(t, Options{})
	alice, bob := setupAliceBob(t, s)
	if err := s.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := t0.Add(time.Duration(w) * time.Hour)
			for i := 0; i < 10; i++ {
				if _, err := s.Upload(alice.Key, packetStream("alice", start.Add(time.Duration(i)*time.Minute), 2)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := s.Query(bob.Key, &query.Query{Limit: 5}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
