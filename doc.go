// Package sensorsafe is a from-scratch Go implementation of SensorSafe
// (Choi, Chakraborty, Charbiwala, Srivastava — UCLA, 2011): a framework for
// privacy-preserving management of personal sensory information.
//
// The implementation lives under internal/:
//
//   - internal/core — the embeddable façade: wire a broker and remote data
//     stores in one process and drive the paper's workflows.
//   - internal/rules — context-aware fine-grained access control: privacy
//     rules (Fig. 4 JSON), the decision engine, and the sensor/context
//     dependency closure.
//   - internal/wavesegment — the wave-segment storage ADT (Fig. 5) and the
//     merge optimizer.
//   - internal/datastore, internal/broker, internal/httpapi — the two
//     server roles and their HTTP APIs/clients.
//   - internal/sensors, internal/inference, internal/phone — the synthetic
//     body-sensor substrate, context inference, and the phone simulator
//     with privacy-rule-aware collection and an energy model.
//   - internal/audit, internal/recommend — the owner-facing access trail
//     and the privacy-rule recommender.
//   - internal/experiments — the reproduction harness behind
//     cmd/benchharness and EXPERIMENTS.md.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package sensorsafe
