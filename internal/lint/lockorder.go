package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockOrder extends mutexguard's per-function lock discipline to the
// whole module. It identifies every mutex by (owning type, field) — the
// same `mu`-field convention the `// guarded by <mu>` annotations use —
// or by (package, var) for package-level mutexes, then:
//
//  1. Summarizes, bottom-up over the call graph (fixpoint over SCCs),
//     which locks each function may acquire and whether it may block
//     (channel send/receive, select without default, time.Sleep,
//     sync.WaitGroup.Wait, net dials, net/http requests, or a call
//     through a dial-named function value).
//  2. Walks each function in statement order tracking the held-lock set
//     (Lock/RLock add, Unlock/RUnlock remove, deferred unlocks keep the
//     lock held to the end, branches fork a copy), recording an
//     acquisition-order edge A→B whenever B is acquired — directly or
//     via a callee — while A is held.
//  3. Reports: cycles in the acquisition-order graph (AB/BA deadlock
//     risk), locks held across blocking operations, and re-acquisition
//     of a mutex the same receiver already holds (self-deadlock).
//
// Goroutine bodies (`go func(){...}`) are walked with an empty held set:
// they run concurrently, not under the spawner's locks. A send or
// receive inside `select { ...; default: }` never blocks and is exempt.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order must be acyclic and locks must not be held across blocking operations",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	eng := loEngineFor(pass)
	for _, f := range eng.findings[pass.Pkg] {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// lockID names one mutex: a struct field ("pkgpath.Type", "mu") or a
// package-level variable ("pkgpath", "mu").
type lockID struct {
	owner string
	name  string
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// loAcquire records that a function may acquire a lock, with the call
// hops leading to the Lock site (first entry is in the summarized
// function's own body for direct acquisitions).
type loAcquire struct {
	steps []token.Pos
	read  bool
}

// loBlock records that a function may block, with hops to the operation.
type loBlock struct {
	steps []token.Pos
	what  string
}

// loSummary is one function's lock summary.
type loSummary struct {
	acquires map[lockID]*loAcquire
	block    *loBlock
}

// loHeld is one lock in the walker's held set.
type loHeld struct {
	pos  token.Pos
	read bool
	recv string // receiver expression text, for instance matching
}

// loEdge is evidence for one acquisition-order edge.
type loEdge struct {
	from, to lockID
	pos      token.Pos   // where `to` is acquired while `from` is held
	heldAt   token.Pos   // where `from` was locked
	chain    []token.Pos // hops from the acquisition site to the Lock call
	pkg      *Package
}

type loEngine struct {
	m *Module
	g *CallGraph

	summaries map[*types.Func]*loSummary
	excluded  map[*CGNode]map[*ast.CallExpr]bool
	display   map[lockID]string
	edges     map[[2]lockID]*loEdge
	findings  map[*Package][]engFinding
	seen      map[string]bool
}

func loEngineFor(pass *Pass) *loEngine {
	if eng, ok := pass.State["lockorder.engine"].(*loEngine); ok {
		return eng
	}
	universe := pass.Universe
	if len(universe) == 0 {
		universe = []*Package{pass.Pkg}
	}
	eng := &loEngine{
		m:         pass.Module,
		g:         pass.Module.CallGraphFor(universe),
		summaries: make(map[*types.Func]*loSummary),
		excluded:  make(map[*CGNode]map[*ast.CallExpr]bool),
		display:   make(map[lockID]string),
		edges:     make(map[[2]lockID]*loEdge),
		findings:  make(map[*Package][]engFinding),
		seen:      make(map[string]bool),
	}
	eng.g.Fixpoint(eng.summarize)
	eng.walkAll()
	eng.reportCycles()
	pass.State["lockorder.engine"] = eng
	return eng
}

// excludedFor marks call expressions that do not run as part of the
// function's own locked execution: bodies of function literals, `go`
// statements, and deferred calls.
func (eng *loEngine) excludedFor(node *CGNode) map[*ast.CallExpr]bool {
	if ex, ok := eng.excluded[node]; ok {
		return ex
	}
	ex := make(map[*ast.CallExpr]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(x.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					ex[c] = true
				}
				return true
			})
			return false
		case *ast.GoStmt:
			ex[x.Call] = true
		case *ast.DeferStmt:
			ex[x.Call] = true
		}
		return true
	})
	eng.excluded[node] = ex
	return ex
}

// summarize is the fixpoint update for one node's lock summary.
func (eng *loEngine) summarize(node *CGNode) bool {
	if node.Decl.Body == nil {
		return false
	}
	sum := eng.summaries[node.Fn]
	if sum == nil {
		sum = &loSummary{acquires: make(map[lockID]*loAcquire)}
		eng.summaries[node.Fn] = sum
	}
	before := len(sum.acquires)
	blockedBefore := sum.block != nil
	excluded := eng.excludedFor(node)

	for i := range node.Sites {
		site := &node.Sites[i]
		if excluded[site.Call] {
			continue
		}
		if id, kind, _, ok := eng.lockAt(node.Pkg, site.Call); ok {
			if kind == opLock || kind == opRLock {
				if sum.acquires[id] == nil {
					sum.acquires[id] = &loAcquire{steps: []token.Pos{site.Pos}, read: kind == opRLock}
				}
			}
			continue
		}
		if what, ok := eng.blockingCall(node.Pkg, site.Call); ok {
			if sum.block == nil {
				sum.block = &loBlock{steps: []token.Pos{site.Pos}, what: what}
			}
			continue
		}
		for _, tgt := range site.Targets {
			tsum := eng.summaries[tgt.Fn]
			if tsum == nil {
				continue
			}
			for id, acq := range tsum.acquires {
				if sum.acquires[id] == nil {
					steps := append([]token.Pos{site.Pos}, acq.steps...)
					sum.acquires[id] = &loAcquire{steps: steps, read: acq.read}
				}
			}
			if tsum.block != nil && sum.block == nil {
				steps := append([]token.Pos{site.Pos}, tsum.block.steps...)
				sum.block = &loBlock{steps: steps, what: tsum.block.what}
			}
		}
	}
	if sum.block == nil {
		if pos, what, ok := chanBlockScan(node.Pkg, node.Decl.Body); ok {
			sum.block = &loBlock{steps: []token.Pos{pos}, what: what}
		}
	}
	return len(sum.acquires) > before || (sum.block != nil) != blockedBefore
}

// chanBlockScan finds the first potentially-blocking channel operation in
// the function's own execution: sends, receives, selects without a
// default case, and ranges over channels. Function literals, go
// statements, and the non-blocking select-with-default idiom are skipped.
func chanBlockScan(pkg *Package, body *ast.BlockStmt) (token.Pos, string, bool) {
	var pos token.Pos
	var what string
	var scanStmt func(ast.Stmt) bool
	scanExpr := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					pos, what, found = x.Pos(), "channel receive", true
					return false
				}
			}
			return true
		})
		return found
	}
	scanStmts := func(list []ast.Stmt) bool {
		for _, s := range list {
			if scanStmt(s) {
				return true
			}
		}
		return false
	}
	scanStmt = func(stmt ast.Stmt) bool {
		switch s := stmt.(type) {
		case nil:
			return false
		case *ast.SendStmt:
			pos, what = s.Arrow, "channel send"
			return true
		case *ast.ExprStmt:
			return scanExpr(s.X)
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				if scanExpr(r) {
					return true
				}
			}
		case *ast.IfStmt:
			if scanStmt(s.Init) || scanExpr(s.Cond) || scanStmts(s.Body.List) {
				return true
			}
			return scanStmt(s.Else)
		case *ast.ForStmt:
			if scanStmt(s.Init) {
				return true
			}
			if s.Cond != nil && scanExpr(s.Cond) {
				return true
			}
			return scanStmts(s.Body.List)
		case *ast.RangeStmt:
			if _, ok := pkg.Info.Types[s.X].Type.Underlying().(*types.Chan); ok {
				pos, what = s.For, "range over channel"
				return true
			}
			return scanStmts(s.Body.List)
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				pos, what = s.Select, "select without default"
				return true
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && scanStmts(cc.Body) {
					return true
				}
			}
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok && scanStmts(cc.Body) {
					return true
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok && scanStmts(cc.Body) {
					return true
				}
			}
		case *ast.BlockStmt:
			return scanStmts(s.List)
		case *ast.LabeledStmt:
			return scanStmt(s.Stmt)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if scanExpr(r) {
					return true
				}
			}
		}
		return false
	}
	return pos, what, scanStmts(body.List)
}

// lockAt recognizes mutex operations: recv.mu.Lock(), pkgMu.RLock(),
// embedded s.Lock(). Local mutex variables have no cross-function
// identity and are skipped.
func (eng *loEngine) lockAt(pkg *Package, call *ast.CallExpr) (lockID, lockOpKind, string, bool) {
	var zero lockID
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return zero, opNone, "", false
	}
	fn, ok := calleeObj(pkg, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return zero, opNone, "", false
	}
	var kind lockOpKind
	switch fn.Name() {
	case "Lock":
		kind = opLock
	case "RLock":
		kind = opRLock
	case "Unlock":
		kind = opUnlock
	case "RUnlock":
		kind = opRUnlock
	default:
		return zero, opNone, "", false
	}
	switch mux := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr: // recv.mu.Lock()
		base := derefType(pkg.Info.Types[mux.X].Type)
		if named, ok := base.(*types.Named); ok && named.Obj().Pkg() != nil {
			obj := named.Obj()
			id := lockID{owner: obj.Pkg().Path() + "." + obj.Name(), name: mux.Sel.Name}
			eng.display[id] = obj.Pkg().Name() + "." + obj.Name() + "." + mux.Sel.Name
			return id, kind, types.ExprString(mux.X), true
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[mux].(*types.Var); ok && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() { // package-level mutex
				id := lockID{owner: v.Pkg().Path(), name: mux.Name}
				eng.display[id] = v.Pkg().Name() + "." + mux.Name
				return id, kind, "", true
			}
			// Embedded mutex: s.Lock() on a struct embedding sync.Mutex.
			if named, ok := derefType(v.Type()).(*types.Named); ok &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
				obj := named.Obj()
				id := lockID{owner: obj.Pkg().Path() + "." + obj.Name(), name: "(embedded)"}
				eng.display[id] = obj.Pkg().Name() + "." + obj.Name()
				return id, kind, mux.Name, true
			}
		}
	}
	return zero, opNone, "", false
}

func derefType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

var dialNameRe = regexp.MustCompile(`(?i)^dial`)

// blockingCall recognizes calls that can block indefinitely on I/O or
// scheduling: timers, waitgroups, network dials and requests, and calls
// through dial-named function values (connection factories).
func (eng *loEngine) blockingCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	switch o := calleeObj(pkg, call).(type) {
	case *types.Func:
		if o.Pkg() == nil {
			return "", false
		}
		switch o.Pkg().Path() {
		case "time":
			if o.Name() == "Sleep" {
				return "time.Sleep", true
			}
		case "sync":
			if o.Name() == "Wait" {
				if recv := o.Type().(*types.Signature).Recv(); recv != nil &&
					strings.Contains(recv.Type().String(), "WaitGroup") {
					return "sync.WaitGroup.Wait", true
				}
			}
		case "net":
			if strings.HasPrefix(o.Name(), "Dial") {
				return "net." + o.Name(), true
			}
		case "net/http":
			switch o.Name() {
			case "Do", "Get", "Post", "PostForm", "Head":
				return "net/http." + o.Name(), true
			}
		}
	case *types.Var:
		if _, ok := o.Type().Underlying().(*types.Signature); ok && dialNameRe.MatchString(o.Name()) {
			return "network dial through " + o.Name() + " func value", true
		}
	}
	return "", false
}

// --- phase 2: held-set walk -------------------------------------------

func (eng *loEngine) walkAll() {
	nodes := make([]*CGNode, 0, len(eng.g.Nodes))
	for _, n := range eng.g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })
	for _, node := range nodes {
		if node.Decl.Body == nil {
			continue
		}
		sites := make(map[*ast.CallExpr]*CallSite, len(node.Sites))
		for i := range node.Sites {
			sites[node.Sites[i].Call] = &node.Sites[i]
		}
		eng.walkStmts(node, sites, node.Decl.Body.List, make(map[lockID]*loHeld))
	}
}

func copyHeld(held map[lockID]*loHeld) map[lockID]*loHeld {
	out := make(map[lockID]*loHeld, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (eng *loEngine) walkStmts(node *CGNode, sites map[*ast.CallExpr]*CallSite, stmts []ast.Stmt, held map[lockID]*loHeld) {
	for _, s := range stmts {
		eng.walkStmt(node, sites, s, held)
	}
}

func (eng *loEngine) walkStmt(node *CGNode, sites map[*ast.CallExpr]*CallSite, stmt ast.Stmt, held map[lockID]*loHeld) {
	switch s := stmt.(type) {
	case nil:
	case *ast.ExprStmt:
		eng.checkExpr(node, sites, s.X, held)
	case *ast.SendStmt:
		eng.checkExpr(node, sites, s.Chan, held)
		eng.checkExpr(node, sites, s.Value, held)
		eng.blockWhileHeld(node, held, s.Arrow, "channel send", nil)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			eng.checkExpr(node, sites, r, held)
		}
		for _, l := range s.Lhs {
			eng.checkExpr(node, sites, l, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						eng.checkExpr(node, sites, v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			eng.checkExpr(node, sites, r, held)
		}
	case *ast.IncDecStmt:
		eng.checkExpr(node, sites, s.X, held)
	case *ast.IfStmt:
		eng.walkStmt(node, sites, s.Init, held)
		eng.checkExpr(node, sites, s.Cond, held)
		eng.walkStmts(node, sites, s.Body.List, copyHeld(held))
		if s.Else != nil {
			eng.walkStmt(node, sites, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		eng.walkStmt(node, sites, s.Init, held)
		if s.Cond != nil {
			eng.checkExpr(node, sites, s.Cond, held)
		}
		body := copyHeld(held)
		eng.walkStmts(node, sites, s.Body.List, body)
		eng.walkStmt(node, sites, s.Post, body)
	case *ast.RangeStmt:
		eng.checkExpr(node, sites, s.X, held)
		if t := node.Pkg.Info.Types[s.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				eng.blockWhileHeld(node, held, s.For, "range over channel", nil)
			}
		}
		eng.walkStmts(node, sites, s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		eng.walkStmt(node, sites, s.Init, held)
		if s.Tag != nil {
			eng.checkExpr(node, sites, s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				eng.walkStmts(node, sites, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		eng.walkStmt(node, sites, s.Init, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				eng.walkStmts(node, sites, cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			eng.blockWhileHeld(node, held, s.Select, "select without default", nil)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				eng.walkStmts(node, sites, cc.Body, copyHeld(held))
			}
		}
	case *ast.GoStmt:
		// Spawned goroutines run without the spawner's locks.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			eng.walkStmts(node, sites, fl.Body.List, make(map[lockID]*loHeld))
		}
	case *ast.DeferStmt:
		// Deferred unlocks keep the lock held to the end of the walk;
		// other deferred work runs after the body and is not modeled.
	case *ast.BlockStmt:
		eng.walkStmts(node, sites, s.List, held)
	case *ast.LabeledStmt:
		eng.walkStmt(node, sites, s.Stmt, held)
	}
}

// checkExpr scans an expression for calls and channel receives under the
// current held set. Function literals are skipped (walked separately when
// spawned).
func (eng *loEngine) checkExpr(node *CGNode, sites map[*ast.CallExpr]*CallSite, expr ast.Expr, held map[lockID]*loHeld) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				eng.blockWhileHeld(node, held, x.Pos(), "channel receive", nil)
			}
		case *ast.CallExpr:
			eng.handleCall(node, sites, x, held)
		}
		return true
	})
}

func (eng *loEngine) handleCall(node *CGNode, sites map[*ast.CallExpr]*CallSite, call *ast.CallExpr, held map[lockID]*loHeld) {
	pkg := node.Pkg
	if id, kind, recv, ok := eng.lockAt(pkg, call); ok {
		switch kind {
		case opLock, opRLock:
			for hid, h := range held {
				if hid == id {
					if kind == opLock && !h.read && h.recv == recv {
						eng.report(node.Pkg, call.Pos(),
							"lock %s acquired again at %s while already held (locked at %s): self-deadlock",
							eng.display[id], relPos(eng.m, call.Pos()), relPos(eng.m, h.pos))
					}
					continue
				}
				eng.addEdge(hid, id, node, call.Pos(), []token.Pos{call.Pos()}, h)
			}
			held[id] = &loHeld{pos: call.Pos(), read: kind == opRLock, recv: recv}
		case opUnlock, opRUnlock:
			delete(held, id)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	if what, ok := eng.blockingCall(pkg, call); ok {
		eng.blockWhileHeld(node, held, call.Pos(), what, nil)
		return
	}
	site := sites[call]
	if site == nil {
		return
	}
	recv := ""
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recv = types.ExprString(sel.X)
	}
	for _, tgt := range site.Targets {
		tsum := eng.summaries[tgt.Fn]
		if tsum == nil {
			continue
		}
		if tsum.block != nil {
			chain := append([]token.Pos{call.Pos()}, tsum.block.steps...)
			eng.blockWhileHeld(node, held, call.Pos(), tsum.block.what, chain)
		}
		for id, acq := range tsum.acquires {
			if h, ok := held[id]; ok {
				if !h.read && !acq.read && len(acq.steps) == 1 && recv != "" && h.recv == recv {
					eng.report(node.Pkg, call.Pos(),
						"call at %s re-acquires %s already held (locked at %s): self-deadlock; path: %s",
						relPos(eng.m, call.Pos()), eng.display[id], relPos(eng.m, h.pos),
						fmtChain(eng.m, append([]token.Pos{call.Pos()}, acq.steps...)))
				}
				continue
			}
			for hid, h := range held {
				if hid == id {
					continue
				}
				chain := append([]token.Pos{call.Pos()}, acq.steps...)
				eng.addEdge(hid, id, node, call.Pos(), chain, h)
			}
		}
	}
}

// blockWhileHeld reports every held lock spanning a blocking operation.
func (eng *loEngine) blockWhileHeld(node *CGNode, held map[lockID]*loHeld, pos token.Pos, what string, chain []token.Pos) {
	if len(held) == 0 {
		return
	}
	ids := make([]lockID, 0, len(held))
	for id := range held {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return eng.display[ids[i]] < eng.display[ids[j]] })
	for _, id := range ids {
		h := held[id]
		msg := "lock " + eng.display[id] + " (locked at " + relPos(eng.m, h.pos) + ") held across " + what
		if len(chain) > 1 {
			msg += "; path: " + fmtChain(eng.m, chain)
		}
		eng.report(node.Pkg, pos, "%s", msg)
	}
}

func (eng *loEngine) addEdge(from, to lockID, node *CGNode, pos token.Pos, chain []token.Pos, h *loHeld) {
	key := [2]lockID{from, to}
	if eng.edges[key] == nil {
		eng.edges[key] = &loEdge{from: from, to: to, pos: pos, heldAt: h.pos, chain: chain, pkg: node.Pkg}
	}
}

func (eng *loEngine) report(pkg *Package, pos token.Pos, format string, args ...any) {
	f := engFinding{pos: pos, msg: fmt.Sprintf(format, args...)}
	key := relPos(eng.m, pos) + "|" + f.msg
	if eng.seen[key] {
		return
	}
	eng.seen[key] = true
	eng.findings[pkg] = append(eng.findings[pkg], f)
}

// --- phase 3: cycle detection -----------------------------------------

// reportCycles finds strongly connected components of the acquisition-
// order graph and reports every edge inside one.
func (eng *loEngine) reportCycles() {
	adj := make(map[lockID][]lockID)
	for key := range eng.edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	comp := lockSCCs(adj)
	edges := make([]*loEdge, 0, len(eng.edges))
	for _, e := range eng.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	for _, e := range edges {
		cf, okF := comp[e.from]
		ct, okT := comp[e.to]
		if !okF || !okT || cf.id != ct.id || len(cf.members) < 2 {
			continue
		}
		members := make([]string, len(cf.members))
		for i, m := range cf.members {
			members[i] = eng.display[m]
		}
		sort.Strings(members)
		eng.report(e.pkg, e.pos,
			"lock acquisition order cycle: %s acquired at %s while holding %s (locked at %s); cycle members: %s; path: %s",
			eng.display[e.to], relPos(eng.m, e.pos), eng.display[e.from], relPos(eng.m, e.heldAt),
			strings.Join(members, ", "), fmtChain(eng.m, e.chain))
	}
}

type lockComp struct {
	id      int
	members []lockID
}

// lockSCCs is Tarjan's algorithm over the lock graph.
func lockSCCs(adj map[lockID][]lockID) map[lockID]*lockComp {
	nodes := make([]lockID, 0, len(adj))
	seen := make(map[lockID]bool)
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for _, to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].owner != nodes[j].owner {
			return nodes[i].owner < nodes[j].owner
		}
		return nodes[i].name < nodes[j].name
	})
	index := make(map[lockID]int)
	low := make(map[lockID]int)
	onStack := make(map[lockID]bool)
	var stack []lockID
	out := make(map[lockID]*lockComp)
	next, compID := 0, 0
	var connect func(n lockID)
	connect = func(n lockID) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, c := range adj[n] {
			if _, ok := index[c]; !ok {
				connect(c)
				if low[c] < low[n] {
					low[n] = low[c]
				}
			} else if onStack[c] && index[c] < low[n] {
				low[n] = index[c]
			}
		}
		if low[n] == index[n] {
			comp := &lockComp{id: compID}
			compID++
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp.members = append(comp.members, top)
				out[top] = comp
				if top == n {
					break
				}
			}
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			connect(n)
		}
	}
	return out
}
