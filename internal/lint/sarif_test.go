package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func sampleDiags() []Diagnostic {
	diags := []Diagnostic{
		{Analyzer: "privacyflow", Message: "raw segment from storage.Scan flows into consumer response"},
		{Analyzer: "lockorder", Message: "lock a.mu held across channel send"},
	}
	diags[0].Pos.Filename = "internal/httpapi/store_server.go"
	diags[0].Pos.Line = 12
	diags[0].Pos.Column = 9
	diags[1].Pos.Filename = "internal/broker/broker.go"
	diags[1].Pos.Line = 40
	diags[1].Pos.Column = 2
	return diags
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleDiags(), Analyzers()); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log["version"] != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", log["version"])
	}
	runs := log["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "sslint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	if rules := driver["rules"].([]any); len(rules) != len(Analyzers()) {
		t.Errorf("got %d rules, want %d", len(rules), len(Analyzers()))
	}
	results := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != "privacyflow" {
		t.Errorf("ruleId = %v", first["ruleId"])
	}
	loc := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if uri := loc["artifactLocation"].(map[string]any)["uri"]; uri != "internal/httpapi/store_server.go" {
		t.Errorf("uri = %v", uri)
	}
	if line := loc["region"].(map[string]any)["startLine"]; line != float64(12) {
		t.Errorf("startLine = %v", line)
	}

	// Empty findings must still be a well-formed log with a results array.
	buf.Reset()
	if err := WriteSARIF(&buf, nil, Analyzers()); err != nil {
		t.Fatalf("WriteSARIF(nil): %v", err)
	}
	var empty struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil {
		t.Fatalf("empty log invalid: %v", err)
	}
	if empty.Runs[0].Results == nil {
		t.Error("empty results serialized as null, want []")
	}
}

// TestBaselineRoundTrip proves the adoption workflow: capture findings
// with WriteJSON, reload them as a baseline, and the same findings are
// suppressed — but a new finding (or a second identical occurrence)
// still surfaces.
func TestBaselineRoundTrip(t *testing.T) {
	diags := sampleDiags()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}

	if got := b.Filter(append([]Diagnostic{}, diags...)); len(got) != 0 {
		t.Errorf("baselined findings not suppressed: %v", got)
	}

	// The same finding moved to another line is still suppressed (the key
	// ignores positions below the file level)...
	moved := sampleDiags()
	moved[0].Pos.Line = 99
	if got := b.Filter(moved); len(got) != 0 {
		t.Errorf("moved finding not suppressed: %v", got)
	}

	// ...but a novel finding and a duplicated occurrence both surface.
	extra := sampleDiags()
	novel := Diagnostic{Analyzer: "privacyflow", Message: "a brand new leak"}
	novel.Pos.Filename = "internal/stream/stream.go"
	extra = append(extra, novel, extra[1]) // second copy of the lockorder finding
	got := b.Filter(extra)
	if len(got) != 2 {
		t.Fatalf("got %d findings after filter, want 2 (novel + duplicate): %v", len(got), got)
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline file: expected error")
	}
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("malformed baseline: expected error")
	}
}

// A nil baseline (no -baseline flag) must pass findings through.
func TestNilBaselineFilter(t *testing.T) {
	var b *Baseline
	diags := sampleDiags()
	if got := b.Filter(diags); len(got) != len(diags) {
		t.Errorf("nil baseline dropped findings: %v", got)
	}
}
