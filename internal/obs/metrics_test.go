package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	cv := r.CounterVec("test_labeled_total", "labeled ops", "kind")
	g := r.Gauge("test_in_flight", "in flight")
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})

	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				cv.With("a").Inc()
				cv.With("b").Add(2)
				g.Inc()
				g.Dec()
				h.Observe(0.05)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %v, want %v", got, workers*iters)
	}
	if got := cv.With("a").Value(); got != workers*iters {
		t.Errorf("counter{kind=a} = %v, want %v", got, workers*iters)
	}
	if got := cv.With("b").Value(); got != 2*workers*iters {
		t.Errorf("counter{kind=b} = %v, want %v", got, 2*workers*iters)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %v, want %v", got, workers*iters)
	}
	wantSum := 0.05 * workers * iters
	if got := h.Sum(); got < wantSum-1e-6 || got > wantSum+1e-6 {
		t.Errorf("histogram sum = %v, want ~%v", got, wantSum)
	}
}

func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("sensorsafe_http_requests_total",
		"HTTP requests served.", "method", "status").With("POST", "200").Add(3)
	r.Gauge("sensorsafe_http_in_flight_requests", "In-flight requests.").Set(2)
	h := r.Histogram("sensorsafe_http_request_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP sensorsafe_http_in_flight_requests In-flight requests.
# TYPE sensorsafe_http_in_flight_requests gauge
sensorsafe_http_in_flight_requests 2
# HELP sensorsafe_http_request_seconds Request latency.
# TYPE sensorsafe_http_request_seconds histogram
sensorsafe_http_request_seconds_bucket{le="0.01"} 1
sensorsafe_http_request_seconds_bucket{le="0.1"} 2
sensorsafe_http_request_seconds_bucket{le="1"} 2
sensorsafe_http_request_seconds_bucket{le="+Inf"} 3
sensorsafe_http_request_seconds_sum 5.055
sensorsafe_http_request_seconds_count 3
# HELP sensorsafe_http_requests_total HTTP requests served.
# TYPE sensorsafe_http_requests_total counter
sensorsafe_http_requests_total{method="POST",status="200"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_bounds", "bounds", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(1.5)
	h.Observe(3) // only +Inf
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_bounds_bucket{le="1"} 1`,
		`test_bounds_bucket{le="2"} 2`,
		`test_bounds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_escape_total", "escape", "path").With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `test_escape_total{path="a\"b\\c\n"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaping: got\n%s\nwant line %q", b.String(), want)
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup", "dup")
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different kind should panic")
		}
	}()
	r.Gauge("test_dup", "dup")
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_same", "same")
	b := r.Counter("test_same", "same")
	if a != b {
		t.Error("same name should return the same counter")
	}
}

func TestHistogramExpositionNeverObserved(t *testing.T) {
	// A histogram that was registered but never observed must still emit a
	// full, internally consistent series: every finite bucket, the
	// cumulative +Inf bucket, _sum, and _count — all zero.
	r := NewRegistry()
	r.Histogram("test_idle_seconds", "idle", []float64{0.1, 1})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_idle_seconds_bucket{le="0.1"} 0`,
		`test_idle_seconds_bucket{le="1"} 0`,
		`test_idle_seconds_bucket{le="+Inf"} 0`,
		`test_idle_seconds_sum 0`,
		`test_idle_seconds_count 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExpositionMonotoneUnderTornReads(t *testing.T) {
	// Observe bumps the bucket counter before the total; exposition must
	// clamp +Inf/_count to at least the finite buckets' cumulative sum so
	// a scrape racing an Observe never shows a non-monotone series.
	r := NewRegistry()
	h := r.Histogram("test_torn_seconds", "torn", []float64{1})
	h.Observe(0.5)
	h.counts[0].Add(1) // simulate the torn state: bucket bumped, count not yet
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_torn_seconds_bucket{le="1"} 2`,
		`test_torn_seconds_bucket{le="+Inf"} 2`,
		`test_torn_seconds_count 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
