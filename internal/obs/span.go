package obs

import (
	"context"
	"time"
)

// spanSeconds aggregates every named span into one histogram family so
// "how long does a privacy-rule evaluation take under load?" is a single
// /metrics query away.
var spanSeconds = NewHistogramVec("sensorsafe_span_seconds",
	"Latency of named internal spans (rule evaluation, segment scans, ...).",
	DefBuckets, "span")

// Time starts a span and returns the function that ends it:
//
//	defer obs.Time(ctx, "datastore.query")()
//
// Ending the span feeds sensorsafe_span_seconds{span=name} and, when the
// context carries a request ID and debug logging is enabled, emits a
// correlated trace line.
func Time(ctx context.Context, name string) func() {
	start := time.Now()
	return func() {
		d := time.Since(start)
		spanSeconds.With(name).Observe(d.Seconds())
		Log(ctx, nil).Debug("span", "span", name, "duration_ms", float64(d.Microseconds())/1000)
	}
}
