package lint

import (
	"go/ast"
	"go/types"
)

// AtomicWrite flags direct os.WriteFile / os.Create calls. Every durable
// state or outbox file in SensorSafe must go through
// resilience.WriteFileAtomic (temp file + fsync + rename) so a crash
// mid-write never leaves a truncated JSON state file behind. The only
// function allowed to touch the raw APIs is an atomic-write helper
// itself (a function named WriteFileAtomic).
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "direct os.WriteFile/os.Create calls bypass crash-safe persistence; use resilience.WriteFileAtomic",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *Pass) {
	inspectFuncs(pass.Pkg, func(n ast.Node, enclosing *ast.FuncDecl) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn, ok := calleeObj(pass.Pkg, call).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return
		}
		if fn.Name() != "WriteFile" && fn.Name() != "Create" {
			return
		}
		if enclosing != nil && enclosing.Name.Name == "WriteFileAtomic" {
			return
		}
		pass.Reportf(call.Pos(),
			"os.%s is not crash-safe for durable state; use resilience.WriteFileAtomic (temp file + fsync + rename)",
			fn.Name())
	})
}
