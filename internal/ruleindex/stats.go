package ruleindex

// Stats is an index's point-in-time self-description, surfaced through
// the store's /debug/ruleindex endpoint and consumercli rulestats.
type Stats struct {
	// Rules is the compiled rule count.
	Rules int `json:"rules"`
	// Version is the contributor's rule-set version the index was
	// compiled at.
	Version uint64 `json:"version"`
	// CompileMicros is how long compilation took.
	CompileMicros int64 `json:"compile_micros"`

	// Decision-cache state and lifetime counters.
	CacheEntries   int     `json:"cache_entries"`
	CacheCapacity  int     `json:"cache_capacity"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	HitRatio       float64 `json:"hit_ratio"`

	// Index-shape counters: posted regions and grid cells, absolute
	// intervals in the tree, and rules with recurring windows on the wheel.
	Regions     int `json:"regions"`
	GridCells   int `json:"grid_cells"`
	Intervals   int `json:"intervals"`
	RepeatRules int `json:"repeat_rules"`
}

// Stats snapshots the index.
func (ix *Index) Stats() Stats {
	s := Stats{
		Rules:         len(ix.rs),
		Version:       ix.version,
		CompileMicros: ix.compile.Microseconds(),
		Regions:       len(ix.geoIdx.regions),
		GridCells:     len(ix.geoIdx.cells),
		Intervals:     len(ix.timeIdx.tree.nodes),
		RepeatRules:   len(ix.timeIdx.reps),
	}
	if c := ix.cache; c != nil {
		s.CacheEntries = c.len()
		s.CacheCapacity = c.capacity()
		s.CacheHits = c.hits.Load()
		s.CacheMisses = c.misses.Load()
		s.CacheEvictions = c.evictions.Load()
		if lookups := s.CacheHits + s.CacheMisses; lookups > 0 {
			s.HitRatio = float64(s.CacheHits) / float64(lookups)
		}
	}
	return s
}
