package experiments

import (
	"strings"
	"testing"
	"time"
)

// assertAllPass fails on any FAIL verdict cell.
func assertAllPass(t *testing.T, table *Table) {
	t.Helper()
	for _, row := range table.Rows {
		for _, cell := range row {
			if strings.HasPrefix(cell, "FAIL") {
				t.Errorf("%s %v: %s", table.ID, row[:len(row)-1], cell)
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID: "EX", Caption: "demo",
		Headers: []string{"a", "bee"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("longer", "x")
	out := tb.String()
	for _, want := range []string{"== EX: demo ==", "a       bee", "longer  x", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestTable1FeatureMatrix is the E1 entry point named in DESIGN.md.
func TestTable1FeatureMatrix(t *testing.T) { TestRunE1AllPass(t) }

func TestRunE1AllPass(t *testing.T) {
	table, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 45 {
		t.Errorf("Table 1 matrix has %d rows; expected full coverage (>=45)", len(table.Rows))
	}
	assertAllPass(t, table)
}

func TestRunE2Shape(t *testing.T) {
	cfg := E2Config{Hours: 0.1, SampleHz: 10, PacketSizes: []int{16, 64}, MaxSegmentSamples: 8192, QueryWindows: 5}
	table, err := RunE2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// The optimized store must have strictly fewer records for every
	// packet size, with the ratio growing as packets shrink.
	for _, row := range table.Rows {
		raw, opt := row[1], row[2]
		if raw == opt {
			t.Errorf("packet %s: no compaction (%s records)", row[0], raw)
		}
	}
}

func TestRunE3DirectWins(t *testing.T) {
	table, err := RunE3(E3Config{Stores: 3, MinutesPerStore: 1, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %v", table.Rows)
	}
	if table.Rows[0][0] != "direct store->consumer" {
		t.Errorf("first row should be direct: %v", table.Rows[0])
	}
}

func TestRunE4Shape(t *testing.T) {
	table, err := RunE4(E4Config{RuleCounts: []int{1, 50}, Evaluations: 50, SegmentSeconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}

func TestRunE5Shape(t *testing.T) {
	table, err := RunE5(E5Config{ContributorCounts: []int{9}, RulesPerContributor: []int{5}, Searches: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// Every third of 9 contributors shares fully at work: expect 3 matches.
	if table.Rows[0][2] != "3" {
		t.Errorf("matches = %s, want 3", table.Rows[0][2])
	}
}

func TestRunE6SafetyProperty(t *testing.T) {
	table, err := RunE6(E6Config{PhaseMinutes: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(e6Policies) {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		if !strings.HasPrefix(row[6], "YES") {
			t.Errorf("policy %q: rule-aware collection changed consumer-visible data: %s", row[0], row[6])
		}
	}
	// The restrictive policies must actually save something.
	for _, row := range table.Rows {
		if row[0] == "share nothing" && row[4] != "100%" {
			t.Errorf("share-nothing policy saved %s, want 100%%", row[4])
		}
		if row[0] == "share everything" && row[4] != "0%" {
			t.Errorf("share-everything policy saved %s, want 0%%", row[4])
		}
	}
}

func TestE4Helpers(t *testing.T) {
	e, err := E4Engine(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Rules()) != 10 {
		t.Errorf("rules = %d", len(e.Rules()))
	}
	seg := E4Segment(10)
	if err := seg.Validate(); err != nil {
		t.Fatal(err)
	}
	if seg.NumSamples() != 100 {
		t.Errorf("samples = %d", seg.NumSamples())
	}
}

func TestE5Helpers(t *testing.T) {
	b, key, err := E5Broker(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Search(key, E5Query())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 { // contributors 0 and 3
		t.Errorf("matches = %v", got)
	}
}

func TestRunE11Shape(t *testing.T) {
	table, err := RunE11(E11Config{
		StoreCounts:      []int{1, 5},
		PerStoreLatency:  time.Millisecond,
		SlowFraction:     0.2,
		SlowLatency:      5 * time.Millisecond,
		SegmentsPerStore: 2,
		Concurrency:      8,
		HedgeAfter:       2 * time.Millisecond,
		Rounds:           1,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, row := range table.Rows {
		if row[len(row)-1] != "PASS" {
			t.Errorf("stores=%s verdict = %q (row %v)", row[0], row[len(row)-1], row)
		}
	}
	// 5 stores × 2 segments: both strategies must agree on the result.
	if table.Rows[1][1] != "10" {
		t.Errorf("releases = %s, want 10", table.Rows[1][1])
	}
}
