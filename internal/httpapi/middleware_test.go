package httpapi

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sensorsafe/internal/wavesegment"
)

// syncBuffer collects log output from both servers' handler goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRequestIDGeneratedWhenAbsent(t *testing.T) {
	d := deploy(t)
	resp, err := http.Get(d.storeClient.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("no X-Request-ID generated")
	}
	if len(id) != 16 {
		t.Errorf("generated id %q: want 16 chars", id)
	}
}

func TestRequestIDEchoedWhenPresent(t *testing.T) {
	d := deploy(t)
	req, err := http.NewRequest(http.MethodGet, d.brokerClient.BaseURL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "caller-chosen-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chosen-id" {
		t.Errorf("echoed id = %q, want caller-chosen-id", got)
	}
}

// TestMetricsEndpointAfterTraffic drives the acceptance flow — register,
// rules, upload, consumer query — then scrapes /metrics and checks the
// exposition contains the HTTP counters, latency buckets, and the release
// decision counter.
func TestMetricsEndpointAfterTraffic(t *testing.T) {
	d := deploy(t)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.storeClient.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	seg := &wavesegment.Segment{
		Contributor: "alice", Start: t0, Interval: time.Second,
		Location: home, Channels: []string{wavesegment.ChannelECG},
		Values: [][]float64{{1}, {2}},
	}
	if _, err := d.storeClient.Upload(alice.Key, []*wavesegment.Segment{seg}); err != nil {
		t.Fatal(err)
	}
	bob, err := d.storeClient.Register("bob", "consumer")
	if err != nil {
		t.Fatal(err)
	}
	rels, err := d.storeClient.QueryText(bob.Key, "channels(ECG)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) == 0 {
		t.Fatal("expected a release before scraping metrics")
	}

	resp, err := http.Get(d.storeClient.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)
	for _, want := range []string{
		`sensorsafe_http_requests_total{component="store",method="POST",route="/api/upload",status="200"}`,
		`sensorsafe_http_request_seconds_bucket{component="store",route="/api/query"`,
		`sensorsafe_datastore_releases_total{decision="allow"}`,
		"# TYPE sensorsafe_http_requests_total counter",
		"# TYPE sensorsafe_http_request_seconds histogram",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRequestIDCorrelatesBrokerAndStoreLogs sends one /api/connect call
// with an explicit X-Request-ID and checks the same ID shows up in both
// services' request logs: the broker's own log line and the store's line
// for the server-to-server ProvisionConsumer hop.
func TestRequestIDCorrelatesBrokerAndStoreLogs(t *testing.T) {
	var buf syncBuffer
	old := logDest
	logDest = &buf
	defer func() { logDest = old }()

	d := deploy(t)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.storeClient.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	bob, err := d.brokerClient.RegisterConsumer("bob")
	if err != nil {
		t.Fatal(err)
	}

	const rid = "corr-0123456789ab"
	body := fmt.Sprintf(`{"key":%q,"contributor":"alice"}`, bob.Key)
	req, err := http.NewRequest(http.MethodPost, d.brokerClient.BaseURL+"/api/connect", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/connect: HTTP %d", resp.StatusCode)
	}

	var sawBroker, sawStore bool
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.Contains(line, "request_id="+rid) {
			continue
		}
		if strings.Contains(line, "component=broker") {
			sawBroker = true
		}
		if strings.Contains(line, "component=store") {
			sawStore = true
		}
	}
	if !sawBroker {
		t.Error("request ID missing from broker logs")
	}
	if !sawStore {
		t.Error("request ID missing from store logs (server-to-server propagation broken)")
	}
}
