package httpapi

import (
	"strings"
	"testing"
	"time"

	"sensorsafe/internal/broker"
	"sensorsafe/internal/geo"
	"sensorsafe/internal/query"
	"sensorsafe/internal/rules"
	"sensorsafe/internal/timeutil"
	"sensorsafe/internal/wavesegment"
)

// geoRect builds a rect from corner coordinates.
func geoRect(minLat, minLon, maxLat, maxLon float64) (geo.Rect, error) {
	return geo.NewRect(geo.Point{Lat: minLat, Lon: minLon}, geo.Point{Lat: maxLat, Lon: maxLon})
}

func timeutilRepeated(days, hours []string) (timeutil.Repeated, error) {
	return timeutil.ParseRepeated(days, hours)
}

func timeutilRange(from, to string) (timeutil.Range, error) {
	a, err := time.Parse(time.RFC3339, from)
	if err != nil {
		return timeutil.Range{}, err
	}
	b, err := time.Parse(time.RFC3339, to)
	if err != nil {
		return timeutil.Range{}, err
	}
	return timeutil.NewRange(a, b)
}

func TestRotateKeyOverHTTP(t *testing.T) {
	d := deploy(t)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := d.storeClient.RotateKey(alice.Key)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == alice.Key || fresh == "" {
		t.Fatalf("rotation returned %q", fresh)
	}
	// Old key dead, new key live.
	if _, err := d.storeClient.QueryOwn(alice.Key, &query.Query{}); err == nil || !strings.Contains(err.Error(), "401") {
		t.Errorf("old key after rotation: %v", err)
	}
	if _, err := d.storeClient.QueryOwn(fresh, &query.Query{}); err != nil {
		t.Errorf("new key: %v", err)
	}
	if _, err := d.storeClient.RotateKey("bogus"); err == nil {
		t.Error("bad key rotation should fail")
	}
}

func TestSearchWireFullOverHTTP(t *testing.T) {
	// Exercise every field of the search wire format: context levels,
	// explicit region, repeat window, absolute range, reference.
	d := deploy(t)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.storeClient.SetRules(alice.Key, []byte(`[{"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	bob, _ := d.brokerClient.RegisterConsumer("bob")

	rect, _ := geoRect(34, -119, 35, -118)
	rep, _ := timeutilRepeated([]string{"Mon", "Tue", "Wed", "Thu", "Fri"}, []string{"9:00am", "6:00pm"})
	rng, _ := timeutilRange("2011-02-01T00:00:00Z", "2011-03-01T00:00:00Z")
	q := &broker.SearchQuery{
		Sensors:        []string{"ECG"},
		Contexts:       map[rules.Category]rules.Level{rules.CategoryStress: rules.LevelBinary},
		Region:         rect,
		RepeatTime:     rep,
		TimeRange:      rng,
		ActiveContexts: []string{rules.CtxWalk},
		Reference:      t0,
	}
	got, err := d.brokerClient.Search(bob.Key, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "alice" {
		t.Fatalf("full-wire search = %v", got)
	}
	// Bad wire inputs map to errors, not panics.
	bad := []*broker.SearchQuery{
		{Contexts: map[rules.Category]rules.Level{"Altitude": rules.LevelRaw}},
	}
	for _, bq := range bad {
		if _, err := d.brokerClient.Search(bob.Key, bq); err == nil {
			t.Errorf("expected error for %+v", bq)
		}
	}
}

func TestAssignConsumerGroupsOverHTTP(t *testing.T) {
	d := deploy(t)
	alice, _ := d.storeClient.Register("alice", "contributor")
	if err := d.storeClient.SetRules(alice.Key, []byte(`[{"Group":["Study"],"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	seg := &wavesegment.Segment{
		Contributor: "alice", Start: t0, Interval: time.Second,
		Location: home, Channels: []string{wavesegment.ChannelECG},
		Values: [][]float64{{1}, {2}},
	}
	if _, err := d.storeClient.Upload(alice.Key, []*wavesegment.Segment{seg}); err != nil {
		t.Fatal(err)
	}
	bob, _ := d.storeClient.Register("bob", "consumer")
	rels, _ := d.storeClient.Query(bob.Key, &query.Query{})
	if len(rels) != 0 {
		t.Fatal("non-member should get nothing")
	}
	if err := d.storeClient.AssignConsumerGroups(alice.Key, "bob", []string{"Study"}); err != nil {
		t.Fatal(err)
	}
	rels, err := d.storeClient.Query(bob.Key, &query.Query{})
	if err != nil || len(rels) != 1 {
		t.Fatalf("member releases = %v, %v", rels, err)
	}
}

func TestRulesForOverHTTPWithPlaces(t *testing.T) {
	// RulesFor must download places too, so label-conditioned rules work on
	// the phone.
	d := deploy(t)
	alice, _ := d.storeClient.Register("alice", "contributor")
	rect, _ := geoRect(34.02, -118.50, 34.03, -118.49)
	if err := d.storeClient.DefinePlace(alice.Key, "home", geo.Region{Rect: rect}); err != nil {
		t.Fatal(err)
	}
	if err := d.storeClient.SetRules(alice.Key, []byte(`[{"LocationLabel":["home"],"Action":"Allow"}]`)); err != nil {
		t.Fatal(err)
	}
	e, err := d.storeClient.RulesFor(alice.Key)
	if err != nil || e == nil {
		t.Fatalf("RulesFor = %v, %v", e, err)
	}
	inHome := e.SharedWithAnyone(t0, geo.Point{Lat: 34.025, Lon: -118.495}, nil)
	away := e.SharedWithAnyone(t0, geo.Point{Lat: 35, Lon: -117}, nil)
	if !inHome || away {
		t.Errorf("compiled engine wrong: home=%v away=%v", inHome, away)
	}
	// No rules yet → nil engine, no error.
	carol, _ := d.storeClient.Register("carol", "contributor")
	e, err = d.storeClient.RulesFor(carol.Key)
	if err != nil || e != nil {
		t.Errorf("empty RulesFor = %v, %v", e, err)
	}
}

func TestRecommendOverHTTP(t *testing.T) {
	d := deploy(t)
	alice, err := d.storeClient.Register("alice", "contributor")
	if err != nil {
		t.Fatal(err)
	}
	seg := &wavesegment.Segment{
		Contributor: "alice", Start: t0, Interval: time.Second,
		Location: home, Channels: []string{wavesegment.ChannelECG},
	}
	for i := 0; i < 600; i++ { // 10 minutes
		seg.Values = append(seg.Values, []float64{0})
	}
	_ = seg.Annotate(rules.CtxStressed, t0, t0.Add(5*time.Minute))
	_ = seg.Annotate(rules.CtxDrive, t0, t0.Add(4*time.Minute))
	if _, err := d.storeClient.Upload(alice.Key, []*wavesegment.Segment{seg}); err != nil {
		t.Fatal(err)
	}

	sugs, err := d.storeClient.Recommend(alice.Key, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("expected suggestions over HTTP")
	}
	if sugs[0].Sensitive != rules.CategoryStress {
		t.Errorf("top suggestion = %+v", sugs[0])
	}
	if sugs[0].RuleJSON == "" || !strings.Contains(sugs[0].Reason, "driving") {
		t.Errorf("suggestion fields = %+v", sugs[0])
	}
	// Custom thresholds travel.
	none, err := d.storeClient.Recommend(alice.Key, 0.99, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("impossible thresholds should yield nothing: %+v", none)
	}
	// Consumers cannot mine.
	bob, _ := d.storeClient.Register("bob", "consumer")
	if _, err := d.storeClient.Recommend(bob.Key, 0, 0); err == nil || !strings.Contains(err.Error(), "403") {
		t.Errorf("consumer recommend: %v", err)
	}
}
