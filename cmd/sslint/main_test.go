package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The module is clean at HEAD, so running the CLI over it exercises the
// full load + analyze path and must exit 0 with no findings.
func TestRunCleanModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, stderr.String(), stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output: %s", stdout.String())
	}
}

func TestRunJSONCleanModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-only", "obsnames"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var diags []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 0 {
		t.Errorf("clean module reported %d findings: %v", len(diags), diags)
	}
}

func TestRunSARIFCleanModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sarif", "-only", "privacyflow,lockorder"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []any  `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	if log.Runs[0].Tool.Driver.Name != "sslint" {
		t.Errorf("driver name = %q", log.Runs[0].Tool.Driver.Name)
	}
	if len(log.Runs[0].Tool.Driver.Rules) != 2 {
		t.Errorf("got %d rules, want 2 (the -only selection)", len(log.Runs[0].Tool.Driver.Rules))
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("clean module reported results: %v", log.Runs[0].Results)
	}
}

func TestRunJSONAndSARIFExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestRunBaseline(t *testing.T) {
	// An empty baseline (a clean -json capture) changes nothing.
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte("[]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", path, "-only", "obsnames"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
}

func TestRunBaselineMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	path := filepath.Join(t.TempDir(), "nope.json")
	if code := run([]string{"-baseline", path}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "baseline") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestRunUnknownSkip(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-skip", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestRunBadPackagePattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "no packages match") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
