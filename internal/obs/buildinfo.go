package obs

import (
	"runtime"
	"sync"
	"time"
)

// Version is the build's version string, stamped at link time:
//
//	go build -ldflags "-X sensorsafe/internal/obs.Version=v1.2.3" ./cmd/...
//
// It defaults to "dev" for plain `go build`/`go test` binaries.
var Version = "dev"

var (
	buildInfo = NewGaugeVec("sensorsafe_build_info",
		"Constant 1, labeled with the build's version and Go toolchain — join "+
			"other series against it to slice dashboards by deployed version.",
		"version", "go_version")
	uptimeSeconds = NewGauge("sensorsafe_process_uptime_seconds",
		"Seconds since this process registered its build info (scrape-time).")
)

var (
	processStart  time.Time
	buildInfoOnce sync.Once
)

// stampBuildInfo publishes the build-info gauge and starts the uptime
// clock; first call wins, later calls only refresh uptime. It is invoked
// from every /metrics render, so scrapes always see a fresh uptime
// without a background ticker.
func stampBuildInfo() {
	buildInfoOnce.Do(func() {
		processStart = time.Now()
		buildInfo.With(Version, runtime.Version()).Set(1)
	})
	uptimeSeconds.Set(time.Since(processStart).Seconds())
}
