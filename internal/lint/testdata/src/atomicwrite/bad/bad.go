// Package bad exercises the atomicwrite analyzer: direct os write APIs on
// durable state paths must be flagged.
package bad

import "os"

func saveState(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600) // want "os.WriteFile is not crash-safe"
}

func createOutbox(path string) error {
	f, err := os.Create(path) // want "os.Create is not crash-safe"
	if err != nil {
		return err
	}
	return f.Close()
}

// saveManifest mirrors the segstore manifest-commit shape done wrong: the
// manifest IS the commit point, so tearing it loses the whole generation.
func saveManifest(dir string, gen uint64, data []byte) error {
	return os.WriteFile(dir+"/MANIFEST", data, 0o600) // want "os.WriteFile is not crash-safe"
}

// newSegmentFile creates a segment file in place instead of writing a
// temp name and renaming after fsync.
func newSegmentFile(path string) (*os.File, error) {
	return os.Create(path) // want "os.Create is not crash-safe"
}
