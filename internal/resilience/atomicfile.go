package resilience

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that a crash at any instant
// leaves either the old content or the new content, never a torn mix:
// write to a temp file in the same directory, fsync it, rename over the
// target, then fsync the directory so the rename itself is durable. The
// temp name is deterministic (path + ".tmp") so a crash leaves at most one
// stray file, which the next write replaces.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("resilience: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resilience: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resilience: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resilience: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resilience: commit %s: %w", path, err)
	}
	// Make the rename durable. Directory fsync is advisory on some
	// filesystems; failure here cannot tear the file, so report nothing.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
