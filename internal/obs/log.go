package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// ctxKey is the context key type for request IDs.
type ctxKey struct{}

// reqSeq backs NewRequestID when the entropy source fails.
var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-character correlation identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("seq-%012x", reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID stores a request ID in the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestID returns the context's request ID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// NewLogger returns a structured text logger tagged with the component
// name (w defaults to os.Stderr). Every SensorSafe server logs through
// one of these so broker and store lines are distinguishable when their
// output is interleaved.
func NewLogger(component string, w io.Writer) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	return slog.New(slog.NewTextHandler(w, nil)).With("component", component)
}

// Log returns base (slog.Default when nil) decorated with the context's
// request ID, so call sites can write one-liners like
// obs.Log(ctx, logger).Info("upload", "records", n).
func Log(ctx context.Context, base *slog.Logger) *slog.Logger {
	if base == nil {
		base = slog.Default()
	}
	if id := RequestID(ctx); id != "" {
		base = base.With("request_id", id)
	}
	return base
}
