package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sensorsafe/internal/obs"
	"sensorsafe/internal/obs/trace"
)

// Retry metrics, labeled by logical operation (API path) so a dashboard
// can tell which hop is flapping.
var (
	metricRetries = obs.NewCounterVec("sensorsafe_resilience_retries_total",
		"Retry attempts issued after a retryable failure, by operation.", "op")
	metricGiveUps = obs.NewCounterVec("sensorsafe_resilience_giveups_total",
		"Operations abandoned after retries, by operation and reason.", "op", "reason")
	metricBudgetDenied = obs.NewCounter("sensorsafe_resilience_budget_denied_total",
		"Retries suppressed because the retry budget was exhausted.")
)

// Budget is a token-bucket retry budget shared by all operations on one
// client: every success deposits a fraction of a token, every retry
// withdraws a whole one, so retries stay a bounded fraction of traffic and
// a hard outage cannot trigger a retry storm.
type Budget struct {
	mu      sync.Mutex
	tokens  float64
	max     float64
	deposit float64
}

// NewBudget returns a budget allowing roughly perSuccess retries per
// successful request, with an initial (and maximum) burst allowance.
func NewBudget(perSuccess, burst float64) *Budget {
	if burst < 1 {
		burst = 1
	}
	return &Budget{tokens: burst, max: burst, deposit: perSuccess}
}

// Deposit credits the budget after a success.
func (b *Budget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.deposit
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Withdraw takes one retry token, reporting false when the budget is dry.
func (b *Budget) Withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Policy drives retries for one client: capped exponential backoff with
// jitter, optional per-attempt timeouts, an optional shared budget, and
// respect for server Retry-After hints. The zero value retries nothing; use
// Default() for sane production settings. A Policy is safe for concurrent
// use.
type Policy struct {
	// MaxAttempts is the total number of tries (1 = no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms when
	// MaxAttempts > 1).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// Jitter is the randomized fraction of each delay in [0,1] (default
	// 0.2): delay is scaled by 1-Jitter/2+Jitter*rand.
	Jitter float64
	// PerAttemptTimeout bounds each individual try (0 = only the caller's
	// context and the HTTP client timeout apply).
	PerAttemptTimeout time.Duration
	// Budget, when set, rate-limits retries across the whole client.
	Budget *Budget
	// Breaker, when set, is consulted before every attempt and fed every
	// outcome: once the target trips, further attempts short-circuit with
	// ErrCircuitOpen instead of touching the network, so a retry loop
	// cannot storm a downed or shedding server.
	Breaker CircuitBreaker
	// Seed makes the jitter deterministic for tests (0 = a fixed default
	// seed; determinism beats entropy here, jitter only needs to decorrelate
	// concurrent retriers).
	Seed int64
	// Sleep is a test seam for the backoff wait; nil uses a real timer that
	// honors ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error

	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand
}

// Default returns the shared production policy: 4 attempts, 50ms backoff
// doubling to a 2s cap with 20% jitter.
func Default() *Policy { return defaultPolicy }

var defaultPolicy = &Policy{MaxAttempts: 4}

// attempts resolves the effective attempt count.
func (p *Policy) attempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// jitterFactor draws a deterministic multiplicative jitter in
// [1-Jitter/2, 1+Jitter/2].
func (p *Policy) jitterFactor() float64 {
	j := p.Jitter
	if j == 0 {
		j = 0.2
	}
	p.rngOnce.Do(func() {
		seed := p.Seed
		if seed == 0 {
			seed = 0x5e50a4 // "sensoa"-ish; fixed so runs are reproducible
		}
		p.rng = rand.New(rand.NewSource(seed))
	})
	p.rngMu.Lock()
	f := p.rng.Float64()
	p.rngMu.Unlock()
	return 1 - j/2 + j*f
}

// backoff computes the delay before retry i (0-based), folding in the
// server's Retry-After hint when it is larger.
func (p *Policy) backoff(i int, hint time.Duration) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxD := p.MaxDelay
	if maxD <= 0 {
		maxD = 2 * time.Second
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(base)
	for k := 0; k < i; k++ {
		d *= mult
		if d >= float64(maxD) {
			break
		}
	}
	delay := time.Duration(d * p.jitterFactor())
	if delay > maxD {
		delay = maxD
	}
	if hint > delay {
		delay = hint // the server knows its own recovery horizon best
	}
	return delay
}

// sleep waits out a backoff, aborting early if ctx ends.
func (p *Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn under the policy: each attempt gets its own (optionally
// deadlined) child context; retryable failures back off and try again
// until the attempts, the budget, or the caller's context run out. op
// labels the retry metrics.
func (p *Policy) Do(ctx context.Context, op string, fn func(ctx context.Context) error) error {
	if p == nil {
		p = defaultPolicy
	}
	attempts := p.attempts()
	var err error
	for i := 0; i < attempts; i++ {
		if p.Breaker != nil {
			if berr := p.Breaker.Allow(); berr != nil {
				metricGiveUps.With(op, "breaker").Inc()
				return fmt.Errorf("resilience: %s short-circuited: %w", op, berr)
			}
		}
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if p.PerAttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
		}
		err = fn(actx)
		cancel()
		if p.Breaker != nil && ctx.Err() == nil {
			// A canceled caller says nothing about the target's health, so
			// only attempts that ran to their own verdict feed the breaker.
			p.Breaker.Report(err)
		}
		if err == nil {
			p.Budget.Deposit()
			return nil
		}
		if ctx.Err() != nil {
			metricGiveUps.With(op, "canceled").Inc()
			return err
		}
		if !Retryable(err) {
			if i > 0 {
				metricGiveUps.With(op, "terminal").Inc()
			}
			return err
		}
		if i+1 >= attempts {
			metricGiveUps.With(op, "attempts").Inc()
			return fmt.Errorf("resilience: %s failed after %d attempts: %w", op, attempts, err)
		}
		if !p.Budget.Withdraw() {
			metricBudgetDenied.Inc()
			metricGiveUps.With(op, "budget").Inc()
			return fmt.Errorf("resilience: %s retry budget exhausted: %w", op, err)
		}
		metricRetries.With(op).Inc()
		delay := p.backoff(i, RetryAfterOf(err))
		// The retry is an event on the caller's active span (not a span of
		// its own): the trace shows when each attempt gave up and how long
		// the backoff held the operation, without fabricating extra tree
		// nodes for waits.
		trace.FromContext(ctx).AddEvent("retry",
			trace.String("op", op),
			trace.Int("attempt", i+1),
			trace.String("cause", err.Error()),
			trace.Duration("backoff_ms", delay))
		if serr := p.sleep(ctx, delay); serr != nil {
			return fmt.Errorf("resilience: %s interrupted during backoff: %w", op, err)
		}
	}
	return err
}
