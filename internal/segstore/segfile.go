package segstore

import (
	"bytes"
	"compress/flate"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sensorsafe/internal/storage"
	"sensorsafe/internal/wavesegment"
)

// Segment-file format. A segment file is an immutable, sorted run of wave
// segments in a columnar per-contributor/per-channel layout:
//
//	header  "SSEG1\n"
//	blocks  (each: flate-compressed body, CRC'd; one contributor per block)
//	footer  sparse index: one entry per block with contributor, byte range,
//	        CRC, time bounds, ID bounds, record count, raw size
//	trailer u32 footer length, u32 footer CRC, magic "SSF1"
//
// Block body (before compression):
//
//	channel dictionary (names stored once per block)
//	record count
//	per record: id, start (delta from previous record), interval,
//	            location, channel dict refs, sample count,
//	            values column-major per channel (the columnar layout),
//	            per-sample timestamp deltas (non-periodic records only),
//	            annotations (context spans, delta-encoded)
//
// Start times and per-sample timestamps are delta-encoded varints; the
// whole body is flate-compressed, so repetitive sensor floats shrink.
// Readers keep only the footer index in memory and fetch blocks on
// demand, which is what makes restart "read footers, not data".

var (
	segHeader     = []byte("SSEG1\n")
	segFootMagic  = []byte("SSF1")
	segTrailerLen = 4 + 4 + len(segFootMagic)
)

const (
	// blockRecords caps how many records one block holds; the sparse
	// index resolves time ranges to at most this many decoded records.
	// Larger blocks amortize the per-stream flate table setup and read
	// in bigger sequential chunks; smaller blocks give point queries a
	// tighter decode bound. 128 keeps point reads cheap while full scans
	// pay the flate fixed cost 4x less often than the original 32.
	blockRecords = 128
	flagRecTimed = 1
)

// rec pairs a stored segment with its ID inside the engine.
type rec struct {
	id  storage.ID
	seg *wavesegment.Segment
}

// flate codec state is large (tens to hundreds of KB per instance) and
// both sides of the block codec run once per block, so pooled instances
// keep flushes, compaction, and scans from being allocation-bound.
var (
	flateReaders sync.Pool // io.ReadCloser values implementing flate.Resetter
	flateWriters sync.Pool // *flate.Writer values
)

func getFlateReader(src io.Reader) io.ReadCloser {
	if v := flateReaders.Get(); v != nil {
		fr := v.(io.ReadCloser)
		fr.(flate.Resetter).Reset(src, nil)
		return fr
	}
	return flate.NewReader(src)
}

func putFlateReader(fr io.ReadCloser) {
	fr.Close()
	flateReaders.Put(fr)
}

func getFlateWriter(dst io.Writer) (*flate.Writer, error) {
	if v := flateWriters.Get(); v != nil {
		fw := v.(*flate.Writer)
		fw.Reset(dst)
		return fw, nil
	}
	return flate.NewWriter(dst, flate.DefaultCompression)
}

func putFlateWriter(fw *flate.Writer) { flateWriters.Put(fw) }

// blockBufs recycles the compressed and decompressed scratch buffers used
// by readBlock. decodeBlock copies every value it keeps (floats, strings,
// timestamps), so the buffers are dead as soon as it returns.
var blockBufs sync.Pool // *[]byte values

func getBlockBuf(n uint64) *[]byte {
	if v := blockBufs.Get(); v != nil {
		bp := v.(*[]byte)
		if uint64(cap(*bp)) >= n {
			*bp = (*bp)[:n]
			return bp
		}
	}
	b := make([]byte, n)
	return &b
}

func putBlockBuf(bp *[]byte) { blockBufs.Put(bp) }

// blockIndex is one footer entry: everything a scan needs to decide
// whether a block is worth decompressing.
type blockIndex struct {
	contributor string
	offset      uint64
	clen        uint64
	crc         uint32
	minStart    int64 // unix nanos of the earliest record start
	maxEnd      int64 // unix nanos of the latest record end
	minID       uint64
	maxID       uint64
	records     int
	rawBytes    uint64
}

// fileMeta summarizes one segment file for the manifest.
type fileMeta struct {
	Name     string `json:"name"`
	Level    int    `json:"level"`
	Records  int    `json:"records"`
	Bytes    int64  `json:"bytes"`
	RawBytes int64  `json:"rawBytes"`
	MinTime  int64  `json:"minTime"` // unix nanos
	MaxTime  int64  `json:"maxTime"` // unix nanos
	MinID    uint64 `json:"minID"`
	MaxID    uint64 `json:"maxID"`
}

func (m fileMeta) overlaps(from, to time.Time) bool {
	if !from.IsZero() && m.MaxTime <= from.UnixNano() {
		return false
	}
	if !to.IsZero() && m.MinTime >= to.UnixNano() {
		return false
	}
	return true
}

// segWriter streams records into a new segment file. Records must be
// added per contributor in (start, id) order; contributors may
// interleave. The file is written to <name>.tmp and atomically renamed
// into place by finish (temp + fsync + rename, the WriteFileAtomic
// discipline, streamed).
type segWriter struct {
	dir   string
	name  string
	level int
	f     *os.File
	off   uint64

	pending map[string][]rec // per-contributor buffered records
	order   []string         // contributor first-seen order, for determinism
	blocks  []blockIndex

	records  int
	rawBytes uint64
}

func newSegWriter(dir, name string, level int) (*segWriter, error) {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("segstore: create %s: %w", tmp, err)
	}
	if _, err := f.Write(segHeader); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("segstore: write header: %w", err)
	}
	return &segWriter{
		dir: dir, name: name, level: level, f: f,
		off:     uint64(len(segHeader)),
		pending: make(map[string][]rec),
	}, nil
}

func (w *segWriter) add(r rec) error {
	c := r.seg.Contributor
	if _, seen := w.pending[c]; !seen {
		w.order = append(w.order, c)
	}
	w.pending[c] = append(w.pending[c], r)
	if len(w.pending[c]) >= blockRecords {
		return w.flushContributor(c)
	}
	return nil
}

func (w *segWriter) flushContributor(c string) error {
	recs := w.pending[c]
	if len(recs) == 0 {
		return nil
	}
	w.pending[c] = nil
	body := encodeBlock(c, recs)
	var comp bytes.Buffer
	fw, err := getFlateWriter(&comp)
	if err != nil {
		return err
	}
	if _, err := fw.Write(body); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	putFlateWriter(fw)
	idx := blockIndex{
		contributor: c,
		offset:      w.off,
		clen:        uint64(comp.Len()),
		crc:         crc32.ChecksumIEEE(comp.Bytes()),
		minStart:    recs[0].seg.StartTime().UnixNano(),
		maxEnd:      recs[0].seg.EndTime().UnixNano(),
		minID:       uint64(recs[0].id),
		maxID:       uint64(recs[0].id),
		records:     len(recs),
		rawBytes:    uint64(len(body)),
	}
	for _, r := range recs[1:] {
		if e := r.seg.EndTime().UnixNano(); e > idx.maxEnd {
			idx.maxEnd = e
		}
		if id := uint64(r.id); id < idx.minID {
			idx.minID = id
		} else if id > idx.maxID {
			idx.maxID = id
		}
	}
	if _, err := w.f.Write(comp.Bytes()); err != nil {
		return fmt.Errorf("segstore: write block: %w", err)
	}
	w.off += idx.clen
	w.blocks = append(w.blocks, idx)
	w.records += len(recs)
	w.rawBytes += idx.rawBytes
	return nil
}

// finish flushes remaining blocks, writes the footer, fsyncs, and
// renames the temp file into place. Returns the manifest entry.
func (w *segWriter) finish() (fileMeta, error) {
	fail := func(err error) (fileMeta, error) {
		w.f.Close()
		os.Remove(filepath.Join(w.dir, w.name+".tmp"))
		return fileMeta{}, err
	}
	for _, c := range w.order {
		if err := w.flushContributor(c); err != nil {
			return fail(err)
		}
	}
	if len(w.blocks) == 0 {
		return fail(fmt.Errorf("segstore: refusing to write empty segment file %s", w.name))
	}
	footer := encodeFooter(w.blocks)
	if _, err := w.f.Write(footer); err != nil {
		return fail(fmt.Errorf("segstore: write footer: %w", err))
	}
	var trailer []byte
	trailer = putUint32(trailer, uint32(len(footer)))
	trailer = putUint32(trailer, crc32.ChecksumIEEE(footer))
	trailer = append(trailer, segFootMagic...)
	if _, err := w.f.Write(trailer); err != nil {
		return fail(fmt.Errorf("segstore: write trailer: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		return fail(fmt.Errorf("segstore: fsync segment: %w", err))
	}
	if err := w.f.Close(); err != nil {
		return fail(fmt.Errorf("segstore: close segment: %w", err))
	}
	tmp := filepath.Join(w.dir, w.name+".tmp")
	final := filepath.Join(w.dir, w.name)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fileMeta{}, fmt.Errorf("segstore: commit segment: %w", err)
	}
	syncDir(w.dir)
	meta := fileMeta{
		Name: w.name, Level: w.level, Records: w.records,
		RawBytes: int64(w.rawBytes),
		MinID:    w.blocks[0].minID, MaxID: w.blocks[0].maxID,
		MinTime: w.blocks[0].minStart, MaxTime: w.blocks[0].maxEnd,
	}
	for _, b := range w.blocks[1:] {
		if b.minStart < meta.MinTime {
			meta.MinTime = b.minStart
		}
		if b.maxEnd > meta.MaxTime {
			meta.MaxTime = b.maxEnd
		}
		if b.minID < meta.MinID {
			meta.MinID = b.minID
		}
		if b.maxID > meta.MaxID {
			meta.MaxID = b.maxID
		}
	}
	if fi, err := os.Stat(final); err == nil {
		meta.Bytes = fi.Size()
	}
	return meta, nil
}

// abort discards a writer that will not be finished.
func (w *segWriter) abort() {
	w.f.Close()
	os.Remove(filepath.Join(w.dir, w.name+".tmp"))
}

// syncDir makes a rename durable; directory fsync is advisory on some
// filesystems, and failure cannot tear the file, so errors are dropped.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

func encodeBlock(contributor string, recs []rec) []byte {
	// Block-local channel dictionary: names are stored once and records
	// reference them by index.
	dict := make(map[string]int)
	var names []string
	for _, r := range recs {
		for _, c := range r.seg.Channels {
			if _, ok := dict[c]; !ok {
				dict[c] = len(names)
				names = append(names, c)
			}
		}
	}
	var b []byte
	b = putUvarint(b, uint64(len(names)))
	for _, n := range names {
		b = putString(b, n)
	}
	b = putUvarint(b, uint64(len(recs)))
	// Block-level totals let the decoder allocate one sample-row array
	// and one float array for the whole block instead of three slices
	// per record — scans are GC-bound without this.
	totalRows, totalFloats := 0, 0
	for _, r := range recs {
		totalRows += len(r.seg.Values)
		totalFloats += len(r.seg.Values) * len(r.seg.Channels)
	}
	b = putUvarint(b, uint64(totalRows))
	b = putUvarint(b, uint64(totalFloats))
	prevStart := int64(0)
	for i, r := range recs {
		s := r.seg
		start := s.StartTime().UnixNano()
		b = putUvarint(b, uint64(r.id))
		if i == 0 {
			b = putVarint(b, start)
		} else {
			b = putVarint(b, start-prevStart)
		}
		prevStart = start
		b = putVarint(b, int64(s.Interval))
		b = putFloat64(b, s.Location.Lat)
		b = putFloat64(b, s.Location.Lon)
		var flags byte
		if s.Interval <= 0 {
			flags |= flagRecTimed
		}
		b = append(b, flags)
		b = putUvarint(b, uint64(len(s.Channels)))
		for _, c := range s.Channels {
			b = putUvarint(b, uint64(dict[c]))
		}
		b = putUvarint(b, uint64(len(s.Values)))
		// Columnar: one channel's samples are contiguous, so a flate
		// window sees runs of similar floats instead of interleaved rows.
		for col := range s.Channels {
			for _, row := range s.Values {
				b = putFloat64(b, row[col])
			}
		}
		if flags&flagRecTimed != 0 {
			prev := start
			for _, t := range s.Timestamps {
				ns := t.UnixNano()
				b = putUvarint(b, uint64(ns-prev))
				prev = ns
			}
		}
		b = putUvarint(b, uint64(len(s.Annotations)))
		for _, a := range s.Annotations {
			b = putString(b, a.Context)
			b = putVarint(b, a.Start.UnixNano()-start)
			b = putVarint(b, a.End.UnixNano()-start)
		}
	}
	return b
}

func decodeBlock(contributor string, body []byte) ([]rec, error) {
	r := &byteReader{data: body}
	nd := r.uvarint()
	if nd > 1<<16 {
		return nil, fmt.Errorf("segstore: implausible channel dictionary size %d", nd)
	}
	dict := make([]string, nd)
	for i := range dict {
		dict[i] = r.string()
	}
	n := r.uvarint()
	if n > blockRecords*16 {
		return nil, fmt.Errorf("segstore: implausible block record count %d", n)
	}
	totalRows := r.uvarint()
	totalFloats := r.uvarint()
	// Floats are stored verbatim (8 bytes each), so the totals cannot
	// exceed the decompressed body.
	if totalFloats*8 > uint64(len(body)) || totalRows > totalFloats {
		return nil, fmt.Errorf("segstore: implausible block totals (%d rows, %d floats)", totalRows, totalFloats)
	}
	out := make([]rec, 0, n)
	// Block-granular allocation: one contiguous segment array, one
	// sample-row header array, one float array, one channel-ref array
	// for the whole block. A scan decodes thousands of records; with
	// per-record slices the GC dominates the entire read path.
	segs := make([]wavesegment.Segment, n)
	rowPool := make([][]float64, totalRows)
	floatPool := make([]float64, totalFloats)
	chanPool := make([]string, 0, n*nd)
	rowCur, floatCur := uint64(0), uint64(0)
	prevStart := int64(0)
	for i := uint64(0); i < n && r.err == nil; i++ {
		id := storage.ID(r.uvarint())
		start := r.varint()
		if i > 0 {
			start += prevStart
		}
		prevStart = start
		seg := &segs[i]
		seg.Contributor = contributor
		seg.Interval = time.Duration(r.varint())
		seg.Location.Lat = r.float64()
		seg.Location.Lon = r.float64()
		var flags byte
		if r.off < len(r.data) {
			flags = r.data[r.off]
			r.off++
		} else {
			r.fail("short flags")
		}
		nch := r.uvarint()
		if nch > nd {
			return nil, fmt.Errorf("segstore: record channel count %d exceeds dictionary", nch)
		}
		// chanPool's capacity (n*nd) is never exceeded because nch <= nd
		// for every record, so these appends cannot reallocate and earlier
		// records' Channels slices stay valid.
		chanBase := len(chanPool)
		for j := uint64(0); j < nch && r.err == nil; j++ {
			idx := r.uvarint()
			if r.err == nil && idx >= nd {
				r.fail("channel dict index out of range")
				break
			}
			if r.err == nil {
				chanPool = append(chanPool, dict[idx])
			}
		}
		seg.Channels = chanPool[chanBase:len(chanPool):len(chanPool)]
		ns := r.uvarint()
		if r.err == nil && (rowCur+ns > totalRows || floatCur+ns*nch > totalFloats) {
			return nil, fmt.Errorf("segstore: block totals overrun (%d samples claimed)", ns)
		}
		if r.err == nil {
			flat := floatPool[floatCur : floatCur+ns*nch]
			seg.Values = rowPool[rowCur : rowCur+ns : rowCur+ns]
			for row := uint64(0); row < ns; row++ {
				seg.Values[row] = flat[row*nch : (row+1)*nch : (row+1)*nch]
			}
			rowCur += ns
			floatCur += ns * nch
			for col := uint64(0); col < nch; col++ {
				for row := uint64(0); row < ns; row++ {
					seg.Values[row][col] = r.float64()
				}
			}
		}
		if flags&flagRecTimed != 0 {
			seg.Timestamps = make([]time.Time, ns)
			prev := start
			for j := range seg.Timestamps {
				prev += int64(r.uvarint())
				seg.Timestamps[j] = time.Unix(0, prev).UTC()
			}
			if ns > 0 && r.err == nil {
				seg.Start = seg.Timestamps[0]
			}
		} else {
			seg.Start = time.Unix(0, start).UTC()
		}
		na := r.uvarint()
		if na > 1<<20 {
			return nil, fmt.Errorf("segstore: implausible annotation count %d", na)
		}
		for j := uint64(0); j < na && r.err == nil; j++ {
			var a wavesegment.Annotation
			a.Context = r.string()
			a.Start = time.Unix(0, start+r.varint()).UTC()
			a.End = time.Unix(0, start+r.varint()).UTC()
			seg.Annotations = append(seg.Annotations, a)
		}
		out = append(out, rec{id: id, seg: seg})
	}
	if r.err != nil {
		return nil, fmt.Errorf("segstore: corrupt block: %w", r.err)
	}
	return out, nil
}

func encodeFooter(blocks []blockIndex) []byte {
	var b []byte
	b = putUvarint(b, uint64(len(blocks)))
	for _, idx := range blocks {
		b = putString(b, idx.contributor)
		b = putUvarint(b, idx.offset)
		b = putUvarint(b, idx.clen)
		b = putUint32(b, idx.crc)
		b = putVarint(b, idx.minStart)
		b = putVarint(b, idx.maxEnd)
		b = putUvarint(b, idx.minID)
		b = putUvarint(b, idx.maxID)
		b = putUvarint(b, uint64(idx.records))
		b = putUvarint(b, idx.rawBytes)
	}
	return b
}

func decodeFooter(data []byte) ([]blockIndex, error) {
	r := &byteReader{data: data}
	n := r.uvarint()
	if n > 1<<24 {
		return nil, fmt.Errorf("segstore: implausible block count %d", n)
	}
	out := make([]blockIndex, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		var idx blockIndex
		idx.contributor = r.string()
		idx.offset = r.uvarint()
		idx.clen = r.uvarint()
		idx.crc = r.uint32()
		idx.minStart = r.varint()
		idx.maxEnd = r.varint()
		idx.minID = r.uvarint()
		idx.maxID = r.uvarint()
		idx.records = int(r.uvarint())
		idx.rawBytes = r.uvarint()
		out = append(out, idx)
	}
	if r.err != nil {
		return nil, fmt.Errorf("segstore: corrupt footer: %w", r.err)
	}
	return out, nil
}

// segReader serves block reads from one immutable segment file. Readers
// are reference-counted: scans retain them so compaction can unlink a
// file that in-flight scans still read (the open descriptor keeps the
// data reachable until the last release closes it).
type segReader struct {
	path   string
	meta   fileMeta
	blocks []blockIndex
	// byContrib indexes blocks per contributor in file order (which is
	// time order within a contributor).
	byContrib map[string][]int

	mu       sync.Mutex
	f        *os.File // guarded by mu
	refs     int      // guarded by mu
	obsolete bool     // guarded by mu
}

// openSegReader validates the file's trailer and footer and loads the
// sparse index; block data stays on disk.
func openSegReader(dir string, meta fileMeta) (*segReader, error) {
	path := filepath.Join(dir, meta.Name)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segstore: open segment %s: %w", meta.Name, err)
	}
	fail := func(err error) (*segReader, error) {
		f.Close()
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if fi.Size() < int64(len(segHeader)+segTrailerLen) {
		return fail(fmt.Errorf("segstore: segment %s truncated (%d bytes)", meta.Name, fi.Size()))
	}
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:len(segHeader)], 0); err != nil {
		return fail(fmt.Errorf("segstore: segment %s: read header: %w", meta.Name, err))
	}
	if !bytes.Equal(hdr[:len(segHeader)], segHeader) {
		return fail(fmt.Errorf("segstore: segment %s: bad header magic", meta.Name))
	}
	trailer := make([]byte, segTrailerLen)
	if _, err := f.ReadAt(trailer, fi.Size()-int64(segTrailerLen)); err != nil {
		return fail(fmt.Errorf("segstore: segment %s: read trailer: %w", meta.Name, err))
	}
	if !bytes.Equal(trailer[8:], segFootMagic) {
		return fail(fmt.Errorf("segstore: segment %s: bad trailer magic (torn file?)", meta.Name))
	}
	tr := &byteReader{data: trailer}
	flen := tr.uint32()
	fcrc := tr.uint32()
	footOff := fi.Size() - int64(segTrailerLen) - int64(flen)
	if footOff < int64(len(segHeader)) {
		return fail(fmt.Errorf("segstore: segment %s: implausible footer length %d", meta.Name, flen))
	}
	footer := make([]byte, flen)
	if _, err := f.ReadAt(footer, footOff); err != nil {
		return fail(fmt.Errorf("segstore: segment %s: read footer: %w", meta.Name, err))
	}
	if crc32.ChecksumIEEE(footer) != fcrc {
		return fail(fmt.Errorf("segstore: segment %s: footer CRC mismatch (torn file?)", meta.Name))
	}
	blocks, err := decodeFooter(footer)
	if err != nil {
		return fail(fmt.Errorf("segstore: segment %s: %w", meta.Name, err))
	}
	r := &segReader{
		path: path, meta: meta, blocks: blocks, f: f, refs: 1,
		byContrib: make(map[string][]int),
	}
	for i, b := range blocks {
		r.byContrib[b.contributor] = append(r.byContrib[b.contributor], i)
	}
	return r, nil
}

// retain takes a reference for the duration of a scan.
func (r *segReader) retain() {
	r.mu.Lock()
	r.refs++
	r.mu.Unlock()
}

// release drops a reference; the descriptor closes once the reader is
// both obsolete (compacted away) and unreferenced.
func (r *segReader) release() {
	r.mu.Lock()
	r.refs--
	if r.refs <= 0 && r.obsolete && r.f != nil {
		r.f.Close()
		r.f = nil
	}
	r.mu.Unlock()
}

// markObsolete is called when compaction replaces this file; the base
// reference taken at open is dropped.
func (r *segReader) markObsolete() {
	r.mu.Lock()
	r.obsolete = true
	r.mu.Unlock()
	r.release()
}

// readBlock fetches, verifies, and decodes one block.
func (r *segReader) readBlock(i int) ([]rec, error) {
	idx := r.blocks[i]
	compBuf := getBlockBuf(idx.clen)
	defer putBlockBuf(compBuf)
	comp := *compBuf
	r.mu.Lock()
	f := r.f
	r.mu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("segstore: segment %s closed", r.meta.Name)
	}
	if _, err := f.ReadAt(comp, int64(idx.offset)); err != nil {
		return nil, fmt.Errorf("segstore: segment %s block %d: %w", r.meta.Name, i, err)
	}
	if crc32.ChecksumIEEE(comp) != idx.crc {
		return nil, fmt.Errorf("segstore: segment %s block %d: CRC mismatch", r.meta.Name, i)
	}
	// The footer records the exact raw size, so decompress into a
	// pre-sized buffer instead of io.ReadAll's grow-and-copy loop.
	bodyBuf := getBlockBuf(idx.rawBytes)
	defer putBlockBuf(bodyBuf)
	body := *bodyBuf
	fr := getFlateReader(bytes.NewReader(comp))
	if _, err := io.ReadFull(fr, body); err != nil {
		return nil, fmt.Errorf("segstore: segment %s block %d: decompress: %w", r.meta.Name, i, err)
	}
	var extra [1]byte
	if n, _ := fr.Read(extra[:]); n != 0 {
		return nil, fmt.Errorf("segstore: segment %s block %d: raw size mismatch", r.meta.Name, i)
	}
	putFlateReader(fr)
	return decodeBlock(idx.contributor, body)
}
